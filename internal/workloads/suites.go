package workloads

import "math/rand"

// The suites below stand in for the benchmark sets of the paper's case
// studies. Names mirror the SPEC naming convention so experiment output
// reads like the paper's tables; the workloads themselves are synthetic
// (see the package comment). Dynamic instruction counts are scaled ~1000x
// down from the real suites so experiments run in seconds.

// suiteRecipe derives a deterministic recipe from a benchmark name and a
// behavioural archetype.
func suiteRecipe(name string, seed int64, archetype string, scale int) Recipe {
	rng := rand.New(rand.NewSource(seed))
	iters := func(base int) int { return base * scale }
	var phases []Phase
	switch archetype {
	case "pointer": // mcf/omnetpp-like: large sets, irregular access
		phases = []Phase{
			{WorkingSetKB: 2048, StrideBytes: 64 + rng.Intn(64), BranchEntropyPct: 25, StorePct: 20, Iterations: iters(2600)},
			{WorkingSetKB: 256, StrideBytes: 24, BranchEntropyPct: 10, StorePct: 10, Iterations: iters(2200)},
			{WorkingSetKB: 4096, StrideBytes: 72, BranchEntropyPct: 35, StorePct: 30, Iterations: iters(1800)},
		}
	case "branchy": // perlbench/gcc/deepsjeng-like: entropy-heavy
		phases = []Phase{
			{WorkingSetKB: 64, StrideBytes: 16, BranchEntropyPct: 45, MulPct: 5, Iterations: iters(3000)},
			{WorkingSetKB: 512, StrideBytes: 40, BranchEntropyPct: 55, StorePct: 15, Iterations: iters(2000)},
			{WorkingSetKB: 32, StrideBytes: 8, BranchEntropyPct: 20, MulPct: 10, Iterations: iters(2800)},
			{WorkingSetKB: 1024, StrideBytes: 56, BranchEntropyPct: 60, StorePct: 25, Iterations: iters(1500)},
		}
	case "compute": // leela/exchange2/x264-like: ILP and multiplies
		phases = []Phase{
			{WorkingSetKB: 16, StrideBytes: 8, MulPct: 40, Iterations: iters(3200)},
			{WorkingSetKB: 128, StrideBytes: 16, MulPct: 25, BranchEntropyPct: 10, StorePct: 20, Iterations: iters(2400)},
			{WorkingSetKB: 48, StrideBytes: 8, MulPct: 60, Iterations: iters(2000)},
		}
	case "stream": // lbm/bwaves-like fp: streaming, vector
		phases = []Phase{
			{WorkingSetKB: 8192, StrideBytes: 64, StorePct: 40, Vector: true, Iterations: iters(2200)},
			{WorkingSetKB: 4096, StrideBytes: 64, StorePct: 30, Vector: true, MulPct: 15, Iterations: iters(2600)},
			{WorkingSetKB: 64, StrideBytes: 8, MulPct: 30, Vector: true, Iterations: iters(1800)},
		}
	default: // mixed
		phases = []Phase{
			{WorkingSetKB: 256, StrideBytes: 32, BranchEntropyPct: 20, StorePct: 15, Iterations: iters(2500)},
			{WorkingSetKB: 2048, StrideBytes: 64, BranchEntropyPct: 10, StorePct: 25, MulPct: 10, Iterations: iters(2000)},
		}
	}
	// Phase script: a few passes over a seeded phase pattern, so phases
	// recur the way program phases do.
	np := len(phases)
	var seq []int
	passes := 3 + rng.Intn(3)
	for p := 0; p < passes; p++ {
		for i := 0; i < np; i++ {
			seq = append(seq, i)
			if rng.Intn(3) == 0 {
				seq = append(seq, rng.Intn(np))
			}
		}
	}
	return Recipe{Name: name, Threads: 1, Phases: phases, Sequence: seq, Seed: seed}
}

// TrainIntRate returns the SPEC CPU2017 train rate-int stand-ins used by
// the Fig. 9 / Table II case study.
func TrainIntRate() []Recipe {
	specs := []struct {
		name      string
		archetype string
	}{
		{"600.perlbench_t", "branchy"},
		{"602.gcc_t", "branchy"},
		{"605.mcf_t", "pointer"},
		{"620.omnetpp_t", "pointer"},
		{"623.xalancbmk_t", "pointer"},
		{"625.x264_t", "compute"},
		{"631.deepsjeng_t", "branchy"},
		{"641.leela_t", "compute"},
		{"648.exchange2_t", "compute"},
		{"657.xz_t", "mixed"},
	}
	out := make([]Recipe, 0, len(specs))
	for i, s := range specs {
		r := suiteRecipe(s.name, int64(1000+i*17), s.archetype, 6)
		r.FileInput = i%3 == 0
		out = append(out, r)
	}
	return out
}

// RefRate returns the ref rate (int + fp) stand-ins for Table III / Fig. 10:
// the same programs with longer runs plus the fp subset.
func RefRate() []Recipe {
	specs := []struct {
		name      string
		archetype string
		scale     int
	}{
		{"600.perlbench_r", "branchy", 14},
		{"602.gcc_r", "branchy", 10},
		{"605.mcf_r", "pointer", 16},
		{"620.omnetpp_r", "pointer", 12},
		{"623.xalancbmk_r", "pointer", 12},
		{"625.x264_r", "compute", 18},
		{"631.deepsjeng_r", "branchy", 14},
		{"641.leela_r", "compute", 16},
		{"648.exchange2_r", "compute", 20},
		{"657.xz_r", "mixed", 12},
		{"503.bwaves_r", "stream", 20},
		{"507.cactuBSSN_r", "stream", 12},
		{"519.lbm_r", "stream", 16},
		{"521.wrf_r", "mixed", 12},
		{"527.cam4_r", "mixed", 12},
		{"538.imagick_r", "compute", 20},
		{"544.nab_r", "compute", 14},
		{"549.fotonik3d_r", "stream", 14},
		{"554.roms_r", "stream", 14},
		{"511.povray_r", "compute", 12},
	}
	out := make([]Recipe, 0, len(specs))
	for i, s := range specs {
		r := suiteRecipe(s.name, int64(2000+i*31), s.archetype, s.scale)
		r.FileInput = i%4 == 0
		out = append(out, r)
	}
	return out
}

// SpeedOMP returns the speed OpenMP stand-ins of the Fig. 11 Sniper case
// study: 8-thread versions with active-wait barriers. xz_s.1 is
// single-threaded, as in the paper.
func SpeedOMP() []Recipe {
	specs := []struct {
		name      string
		archetype string
		threads   int
	}{
		{"603.bwaves_s.1", "stream", 8},
		{"607.cactuBSSN_s.1", "stream", 8},
		{"619.lbm_s.1", "stream", 8},
		{"621.wrf_s.1", "mixed", 8},
		{"627.cam4_s.1", "mixed", 8},
		{"628.pop2_s.1", "stream", 8},
		{"638.imagick_s.1", "compute", 8},
		{"644.nab_s.1", "compute", 8},
		{"657.xz_s.1", "mixed", 1},
	}
	out := make([]Recipe, 0, len(specs))
	for i, s := range specs {
		// Scale 1 keeps parallel regions short, so barrier spin time is a
		// visible share of execution (the Fig. 11 effect).
		r := suiteRecipe(s.name, int64(3000+i*13), s.archetype, 1)
		r.Threads = s.threads
		// Longer scripts compensate for the shorter regions.
		r.Sequence = append(r.Sequence, r.Sequence...)
		out = append(out, r)
	}
	return out
}

// CPU2006 returns the 19 SPEC CPU2006 stand-ins of the gem5 Table V case
// study. None of them use vector instructions (the paper profiles with
// SDE -pentium because gem5 supports only SSE/SSE2).
func CPU2006() []Recipe {
	specs := []struct {
		name      string
		archetype string
	}{
		{"400.perlbench", "branchy"},
		{"401.bzip2", "mixed"},
		{"403.gcc", "branchy"},
		{"429.mcf", "pointer"},
		{"445.gobmk", "branchy"},
		{"456.hmmer", "compute"},
		{"458.sjeng", "branchy"},
		{"462.libquantum", "stream"},
		{"464.h264ref", "compute"},
		{"471.omnetpp", "pointer"},
		{"473.astar", "pointer"},
		{"483.xalancbmk", "pointer"},
		{"410.bwaves", "stream"},
		{"433.milc", "stream"},
		{"444.namd", "compute"},
		{"450.soplex", "pointer"},
		{"453.povray", "compute"},
		{"470.lbm", "stream"},
		{"482.sphinx3", "compute"},
	}
	out := make([]Recipe, 0, len(specs))
	for i, s := range specs {
		r := suiteRecipe(s.name, int64(4000+i*7), s.archetype, 8)
		// SE mode: strip vector phases.
		for p := range r.Phases {
			r.Phases[p].Vector = false
		}
		out = append(out, r)
	}
	return out
}

// ByName finds a recipe in any suite.
func ByName(name string) (Recipe, bool) {
	for _, suite := range [][]Recipe{TrainIntRate(), RefRate(), SpeedOMP(), CPU2006()} {
		for _, r := range suite {
			if r.Name == name {
				return r, true
			}
		}
	}
	return Recipe{}, false
}

// InputFile returns the content for /input.dat consumed by FileInput
// recipes.
func InputFile() []byte {
	data := make([]byte, 16384)
	rng := rand.New(rand.NewSource(0xe1f1e))
	rng.Read(data)
	return data
}
