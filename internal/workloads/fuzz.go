package workloads

import (
	"fmt"
	"math/rand"
)

// Fuzz-generated workloads: the corpus's coverage net. Each seed derives a
// random but fully deterministic phase recipe — working sets, strides,
// entropy, instruction mix, and phase script all come from one rand.Rand
// seeded by the fuzz seed, so the generated assembly (and therefore every
// ELFie cut from it) is byte-identical across runs and across -j1 vs -j8
// grid execution. TestFuzzWorkloadDeterminism pins this with per-seed
// ELFie hashes.

// FuzzSeeds returns the fuzz seeds registered in the corpus.
func FuzzSeeds() []int64 {
	return []int64{1, 2, 3, 4}
}

// Fuzz derives the deterministic fuzz recipe for a seed. The parameter
// ranges are chosen so every draw is a valid, terminating, single-threaded
// program of roughly 1.5–4M dynamic instructions.
func Fuzz(seed int64) Recipe {
	rng := rand.New(rand.NewSource(0xf022 ^ seed<<8))
	np := 2 + rng.Intn(3) // 2..4 phases
	phases := make([]Phase, np)
	for i := range phases {
		phases[i] = Phase{
			WorkingSetKB:     []int{16, 64, 256, 1024, 2048}[rng.Intn(5)],
			StrideBytes:      []int{8, 16, 24, 40, 64, 72}[rng.Intn(6)],
			BranchEntropyPct: rng.Intn(60),
			MulPct:           rng.Intn(40),
			StorePct:         rng.Intn(40),
			Iterations:       8000 + rng.Intn(12000),
			Vector:           rng.Intn(4) == 0,
		}
	}
	passes := 3 + rng.Intn(3)
	var seq []int
	for p := 0; p < passes; p++ {
		for i := 0; i < np; i++ {
			seq = append(seq, i)
			if rng.Intn(2) == 0 {
				seq = append(seq, rng.Intn(np))
			}
		}
	}
	return Recipe{
		Name:     fmt.Sprintf("fz.%04d", seed),
		Threads:  1,
		Phases:   phases,
		Sequence: seq,
		Seed:     0x5eed<<16 | seed,
	}
}
