package workloads_test

import (
	"testing"

	"elfie/internal/grid"
	"elfie/internal/workloads"
)

// TestCorpusValidates pins the corpus acceptance bar: every entry marked
// Validates passes the paper's §IV check — the weighted region CPI of its
// selected (and semantically linted) ELFie regions predicts the whole-run
// CPI within a generous envelope. The envelope is wide because the corpus
// includes adversarial kernels (pointer chasing, fuzz workloads with hot
// phase transitions); the regression this test catches is a workload or
// pipeline change that silently stops regions from validating at all.
func TestCorpusValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("full §IV validation sweep is slow")
	}
	const maxAbsErrPct = 35.0
	entries := workloads.Corpus()
	validating := 0
	for _, e := range entries {
		if !e.Meta.Validates {
			continue
		}
		validating++
		e := e
		t.Run(e.Meta.Name, func(t *testing.T) {
			t.Parallel()
			exp := &grid.Experiment{Name: "corpus-validate", Kind: grid.KindValidate}
			row := grid.Execute(&grid.Cell{
				ID:      "corpus-validate/" + e.Meta.Name + "/native/s1",
				Exp:     exp,
				Recipe:  e.Recipe,
				Mode:    "native",
				Seed:    1,
				Repeats: 1,
			})
			if row.Status != "ok" {
				t.Fatalf("validation failed: exit %d: %s", row.ExitCode, row.Error)
			}
			err := row.Samples[0].PredErrPct
			cov := row.Samples[0].Coverage
			t.Logf("prediction error %+.2f%%, coverage %.0f%%, regions %.0f",
				err, 100*cov, row.Extra["regions"])
			if err < -maxAbsErrPct || err > maxAbsErrPct {
				t.Errorf("|prediction error| %.1f%% exceeds %.0f%%", err, maxAbsErrPct)
			}
			if cov <= 0 {
				t.Error("zero region coverage — no region survived selection/linting")
			}
		})
	}
	// The paper reproduction needs a real corpus: at least 6 workloads
	// beyond the micro kernels must clear the §IV bar.
	if validating < 6 {
		t.Fatalf("only %d corpus workloads are marked Validates, want >= 6", validating)
	}
}
