package workloads

import (
	"fmt"
	"sort"
	"strings"
)

// The corpus is the registry the experiment grid (internal/grid) draws
// workloads from. Where the suite recipes stand in for SPEC's phased
// compute programs, the corpus kernels cover the behaviours those never
// reach: kernel-visible memory churn (mmap/munmap/brk), fd-heavy server
// loops, syscall-dense paths, self-modifying code, multi-threaded lock
// contention and false sharing, plus seeded fuzz-generated recipes. Every
// entry carries the metadata the grid filters on — thread count, syscall
// density, memory footprint — and a Validates flag naming the workloads
// that must pass the paper's §IV check (region CPI predicts whole-run CPI
// within the error envelope).

// Meta describes one corpus workload for grid filtering.
type Meta struct {
	// Name is the registry key (also the Recipe name).
	Name string `json:"name"`
	// Threads is the workload's thread count.
	Threads int `json:"threads"`
	// SyscallDensity is the approximate number of system calls per 1000
	// retired instructions (0 = syscalls only at exit).
	SyscallDensity float64 `json:"syscall_density"`
	// FootprintKB is the approximate touched data footprint.
	FootprintKB int `json:"footprint_kb"`
	// Tags classify the workload ("micro", "corpus", "fuzz", "mt", "st",
	// "syscall", "mem", "smc", ...). Grid selectors match on them.
	Tags []string `json:"tags"`
	// Validates marks workloads that participate in the §IV region-vs-
	// whole-run CPI validation check. Multi-threaded spin kernels are
	// excluded: their whole-run CPI is dominated by barrier/lock spinning
	// on a time-shared measurement core, which the paper validates through
	// Sniper simulation (Fig. 11) instead.
	Validates bool `json:"validates"`
}

// Entry is one registered corpus workload.
type Entry struct {
	Meta
	Recipe Recipe
}

// HasTag reports whether the entry carries tag t.
func (e *Entry) HasTag(t string) bool {
	for _, tag := range e.Tags {
		if tag == t {
			return true
		}
	}
	return false
}

// asmRecipe wraps a raw source kernel as a Recipe.
func asmRecipe(name, src string, approx uint64) Recipe {
	return Recipe{Name: name, Threads: 1, Asm: src, ApproxInstr: approx}
}

// Corpus returns every registered corpus workload, in deterministic order:
// the three micro kernels, the behavioural kernels, then the fuzz recipes.
func Corpus() []Entry {
	entries := []Entry{
		{
			Meta: Meta{Name: "decode_heavy", Threads: 1, SyscallDensity: 0,
				FootprintKB: 4, Tags: []string{"micro", "st"}},
			Recipe: asmRecipe("decode_heavy", microDecodeHeavy, 4_400_000),
		},
		{
			Meta: Meta{Name: "mem_stream", Threads: 1, SyscallDensity: 0,
				FootprintKB: 8, Tags: []string{"micro", "st", "mem"}},
			Recipe: asmRecipe("mem_stream", microMemStream, 3_600_000),
		},
		{
			Meta: Meta{Name: "syscall_dense", Threads: 1, SyscallDensity: 200,
				FootprintKB: 4, Tags: []string{"micro", "st", "syscall"}},
			Recipe: asmRecipe("syscall_dense", microSyscallDense, 500_000),
		},
		{
			Meta: Meta{Name: "mm.churn", Threads: 1, SyscallDensity: 2.4,
				FootprintKB: 48, Tags: []string{"corpus", "st", "mem", "syscall"},
				Validates: true},
			Recipe: asmRecipe("mm.churn", mmChurnSrc, 2_600_000),
		},
		{
			Meta: Meta{Name: "srv.fd", Threads: 1, SyscallDensity: 5.5,
				FootprintKB: 20, Tags: []string{"corpus", "st", "syscall"},
				Validates: true},
			Recipe: func() Recipe {
				r := asmRecipe("srv.fd", srvFdSrc, 2_200_000)
				r.FileInput = true
				return r
			}(),
		},
		{
			Meta: Meta{Name: "sys.dense", Threads: 1, SyscallDensity: 18,
				FootprintKB: 4, Tags: []string{"corpus", "st", "syscall"},
				Validates: true},
			Recipe: asmRecipe("sys.dense", sysDenseSrc, 2_000_000),
		},
		{
			Meta: Meta{Name: "ptr.chase", Threads: 1, SyscallDensity: 0,
				FootprintKB: 512, Tags: []string{"corpus", "st", "mem"},
				Validates: true},
			Recipe: asmRecipe("ptr.chase", ptrChaseSrc, 2_400_000),
		},
		{
			// Validates=false: the self-modifying kernel lives in a
			// writable+executable page, which elflint's semantic pass
			// rejects by design (EL006 W^X), so no §IV region survives
			// linting. Structural smoke coverage only.
			Meta: Meta{Name: "smc.flip", Threads: 1, SyscallDensity: 0,
				FootprintKB: 8, Tags: []string{"corpus", "st", "smc"}},
			Recipe: asmRecipe("smc.flip", smcFlipSrc, 2_200_000),
		},
		{
			Meta: Meta{Name: "ctn.lock", Threads: 4, SyscallDensity: 0.01,
				FootprintKB: 4, Tags: []string{"corpus", "mt", "contention"}},
			Recipe: ctnRecipe("ctn.lock", 4, false),
		},
		{
			Meta: Meta{Name: "ctn.false", Threads: 4, SyscallDensity: 0.01,
				FootprintKB: 4, Tags: []string{"corpus", "mt", "contention"}},
			Recipe: ctnRecipe("ctn.false", 4, true),
		},
	}
	for _, seed := range FuzzSeeds() {
		r := Fuzz(seed)
		entries = append(entries, Entry{
			Meta: Meta{Name: r.Name, Threads: 1, SyscallDensity: 0,
				FootprintKB: fuzzFootprintKB(r),
				Tags:        []string{"corpus", "fuzz", "st"}, Validates: true},
			Recipe: r,
		})
	}
	return entries
}

// fuzzFootprintKB reports the largest phase working set of a fuzz recipe.
func fuzzFootprintKB(r Recipe) int {
	kb := 4
	for _, p := range r.Phases {
		if p.WorkingSetKB > kb {
			kb = p.WorkingSetKB
		}
	}
	return kb
}

// CorpusByName finds one corpus entry.
func CorpusByName(name string) (Entry, bool) {
	for _, e := range Corpus() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Select resolves a grid workload selector into recipes:
//
//	"name"        exact corpus or suite workload name
//	"tag:<t>"     every corpus entry carrying tag t
//	"corpus"      every corpus entry (micro + behavioural + fuzz)
//	"validates"   every corpus entry participating in §IV validation
//	"suite:<s>"   a whole recipe suite (train, ref, omp, cpu2006)
//
// Results are deterministic: registry order for corpus selectors, suite
// order for suites.
func Select(sel string) ([]Recipe, error) {
	switch {
	case sel == "corpus":
		return corpusRecipes(func(e *Entry) bool { return true }), nil
	case sel == "validates":
		return corpusRecipes(func(e *Entry) bool { return e.Validates }), nil
	case strings.HasPrefix(sel, "tag:"):
		tag := strings.TrimPrefix(sel, "tag:")
		rs := corpusRecipes(func(e *Entry) bool { return e.HasTag(tag) })
		if len(rs) == 0 {
			return nil, fmt.Errorf("workloads: selector %q matches nothing", sel)
		}
		return rs, nil
	case strings.HasPrefix(sel, "suite:"):
		switch strings.TrimPrefix(sel, "suite:") {
		case "train":
			return TrainIntRate(), nil
		case "ref":
			return RefRate(), nil
		case "omp":
			return SpeedOMP(), nil
		case "cpu2006":
			return CPU2006(), nil
		}
		return nil, fmt.Errorf("workloads: unknown suite in selector %q", sel)
	}
	if e, ok := CorpusByName(sel); ok {
		return []Recipe{e.Recipe}, nil
	}
	if r, ok := ByName(sel); ok {
		return []Recipe{r}, nil
	}
	return nil, fmt.Errorf("workloads: unknown workload or selector %q", sel)
}

// corpusRecipes filters the registry.
func corpusRecipes(keep func(*Entry) bool) []Recipe {
	var out []Recipe
	for _, e := range Corpus() {
		e := e
		if keep(&e) {
			out = append(out, e.Recipe)
		}
	}
	return out
}

// Names returns every registered corpus workload name, sorted.
func Names() []string {
	var out []string
	for _, e := range Corpus() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// -----------------------------------------------------------------------
// Micro kernels — the execution-core benchmarks (BENCH_vm.json rows).
// Each runs a fixed instruction count and exits via exit_group, so every
// engine mode retires the identical stream.
// -----------------------------------------------------------------------

// microDecodeHeavy: long blocks of register ALU work with a loop branch —
// the workload where fetch/decode elimination matters most.
const microDecodeHeavy = `
	.text
	.global _start
_start:
	limm r1, 400000
loop:
	addi r2, r2, 1
	add  r3, r3, r2
	xor  r4, r4, r3
	shli r5, r3, 3
	sub  r6, r5, r2
	muli r7, r2, 17
	or   r8, r6, r7
	andi r9, r8, 4095
	cmp  r2, r1
	jnz  loop
	movi r0, 231
	movi r1, 0
	syscall
`

// microMemStream: load/store pairs walking a buffer — the workload where
// the software TLB and in-page fast paths matter most.
const microMemStream = `
	.text
	.global _start
_start:
	limm r1, 400000
	limm r8, buf
loop:
	addi r2, r2, 1
	andi r3, r2, 4088
	lea1 r4, r8, r3, 0
	st.q r2, [r4]
	ld.q r5, [r4]
	add  r6, r6, r5
	ld.b r7, [r4+3]
	cmp  r2, r1
	jnz  loop
	movi r0, 231
	movi r1, 0
	syscall
	.data
buf:	.space 8192
`

// microSyscallDense: a cheap kernel call every few instructions — bounds
// what block caching can win when execution keeps leaving user code.
const microSyscallDense = `
	.text
	.global _start
_start:
	limm r5, 100000
loop:
	movi r0, 39      # getpid
	syscall
	addi r2, r2, 1
	add  r3, r3, r0
	cmp  r2, r5
	jnz  loop
	movi r0, 231
	movi r1, 0
	syscall
`

// -----------------------------------------------------------------------
// Behavioural corpus kernels.
// -----------------------------------------------------------------------

// mmChurnSrc maps, touches, and unmaps anonymous memory in a loop, with
// periodic brk growth — address-space churn that exercises the mmap/brk
// injection replay of converted ELFies (elflint EL009/EL013 territory).
const mmChurnSrc = `
	.text
	.global _start
_start:
	movi r13, 0          # iteration counter
	movi r9, 40503       # LCG state
mainloop:
	movi r0, 9           # mmap(0, 16K, RW, PRIVATE|ANON)
	movi r1, 0
	limm r2, 16384
	movi r3, 3
	movi r4, 0x22
	syscall
	mov  r11, r0
	movi r8, 0
touch:                       # dirty every page of the fresh mapping
	lea1 r4, r11, r8, 0
	st.q r9, [r4]
	ld.q r5, [r4]
	add  r10, r10, r5
	addi r8, r8, 4096
	cmpi r8, 16384
	jnz  touch
	movi r8, 0
alu:                         # compute filler between map operations
	muli r9, r9, 1103515245
	addi r9, r9, 12345
	xor  r10, r10, r9
	shri r5, r9, 9
	add  r10, r10, r5
	addi r8, r8, 1
	cmpi r8, 220
	jnz  alu
	movi r0, 11          # munmap(base, 16K)
	mov  r1, r11
	limm r2, 16384
	syscall
	andi r12, r13, 7
	cmpi r12, 3
	jnz  nobrk
	movi r0, 12          # brk(0): query
	movi r1, 0
	syscall
	addi r1, r0, 8192    # grow the break two pages
	movi r0, 12
	syscall
nobrk:
	addi r13, r13, 1
	cmpi r13, 1600
	jnz  mainloop
	movi r0, 231
	movi r1, 0
	syscall
`

// srvFdSrc is an fd-heavy server loop: per "request", open the input
// file, read a header, seek to a payload, read it, dup the descriptor,
// and close both — the descriptor-table churn of an accept loop.
const srvFdSrc = `
	.text
	.global _start
_start:
	movi r13, 0          # request counter
	movi r9, 617
reqloop:
	movi r0, 2           # open("/input.dat")
	limm r1, path
	movi r2, 0
	syscall
	mov  r11, r0         # fd
	movi r0, 0           # read 64-byte header
	mov  r1, r11
	limm r2, buf
	movi r3, 64
	syscall
	movi r0, 8           # lseek(fd, (r9 & 0x1fff), SEEK_SET)
	mov  r1, r11
	andi r2, r9, 8191
	movi r3, 0
	syscall
	movi r0, 0           # read 128-byte payload
	mov  r1, r11
	limm r2, buf
	movi r3, 128
	syscall
	movi r0, 32          # dup(fd)
	mov  r1, r11
	syscall
	mov  r12, r0
	movi r0, 3           # close(dup)
	mov  r1, r12
	syscall
	movi r0, 3           # close(fd)
	mov  r1, r11
	syscall
	limm r2, buf         # fold the payload into the accumulator
	ld.q r5, [r2]
	add  r10, r10, r5
	movi r8, 0
work:                        # per-request compute
	muli r9, r9, 1103515245
	addi r9, r9, 12345
	xor  r10, r10, r9
	addi r8, r8, 1
	cmpi r8, 180
	jnz  work
	addi r13, r13, 1
	cmpi r13, 1800
	jnz  reqloop
	movi r0, 231
	movi r1, 0
	syscall
	.data
path:	.asciz "/input.dat"
buf:	.space 256
`

// sysDenseSrc interleaves cheap kernel calls — getpid, clock_gettime,
// gettimeofday, sched_yield — with short compute bursts: the syscall-
// dense profile of a polling event loop.
const sysDenseSrc = `
	.text
	.global _start
_start:
	movi r13, 0
	movi r9, 229
mainloop:
	movi r0, 39          # getpid
	syscall
	add  r10, r10, r0
	movi r0, 228         # clock_gettime(0, ts)
	movi r1, 0
	limm r2, ts
	syscall
	limm r2, ts
	ld.q r5, [r2]
	add  r10, r10, r5
	movi r0, 96          # gettimeofday(tv, 0)
	limm r1, tv
	movi r2, 0
	syscall
	movi r0, 24          # sched_yield
	syscall
	movi r8, 0
work:
	muli r9, r9, 1103515245
	addi r9, r9, 12345
	xor  r10, r10, r9
	addi r8, r8, 1
	cmpi r8, 50
	jnz  work
	addi r13, r13, 1
	cmpi r13, 7000
	jnz  mainloop
	movi r0, 231
	movi r1, 0
	syscall
	.data
ts:	.space 16
tv:	.space 16
`

// ptrChaseSrc builds a pseudo-random pointer ring at startup, then chases
// it — the dependent-load latency profile of linked-data-structure code
// (mcf without the suite scaffolding).
const ptrChaseSrc = `
	.text
	.global _start
_start:
	# Build a ring of 65536 8-byte slots: slot[i] = &slot[perm(i)], with
	# perm an LCG walk over the index space (period 65536 for a*4+1 mults).
	limm r13, ring
	movi r8, 0           # i
	movi r9, 12345       # LCG cursor (index units)
build:
	muli r9, r9, 69069
	addi r9, r9, 1
	andi r4, r9, 65535   # next index
	shli r5, r4, 3
	add  r5, r5, r13     # &slot[next]
	shli r6, r8, 3
	add  r6, r6, r13     # &slot[i]  (dense walk while building)
	st.q r5, [r6]
	addi r8, r8, 1
	cmpi r8, 65536
	jnz  build
	# Chase.
	mov  r4, r13
	movi r8, 0
chase:
	ld.q r4, [r4]
	ld.q r4, [r4]
	ld.q r4, [r4]
	ld.q r4, [r4]
	addi r8, r8, 1
	cmpi r8, 220000
	jnz  chase
	add  r10, r10, r4
	movi r0, 231
	movi r1, 0
	syscall
	.bss
	.align 4096
ring:	.space 524288
`

// smcFlipSrc exercises self-modifying code: the loop rewrites one
// instruction word of a patch site (alternating between two pre-assembled
// variants kept beside it) and re-executes it — the page-generation SMC
// invalidation path of the block cache, from guest code rather than test
// harness pokes. The patchable code lives in an "awx" section.
const smcFlipSrc = `
	.section .wtext, "awx"
	.align 4096
patchfn:
	xori r10, r10, 85    # patch site: overwritten each iteration
	ret
variant0:
	xori r10, r10, 85
variant1:
	addi r10, r10, 7
	.text
	.global _start
_start:
	movi r13, 0
	movi r9, 911
mainloop:
	andi r4, r13, 1      # pick variant by parity
	cmpi r4, 0
	jnz  pick1
	limm r4, variant0
	jmp  picked
pick1:
	limm r4, variant1
picked:
	ld.q r5, [r4]        # fetch the variant's encoding
	limm r6, patchfn
	st.q r5, [r6]        # patch (same page: SMC invalidation)
	call patchfn
	movi r8, 0
work:
	muli r9, r9, 1103515245
	addi r9, r9, 12345
	xor  r10, r10, r9
	addi r8, r8, 1
	cmpi r8, 120
	jnz  work
	addi r13, r13, 1
	cmpi r13, 2600
	jnz  mainloop
	movi r0, 231
	movi r1, 0
	syscall
`

// ctnRecipe builds a multi-threaded contention kernel: n threads hammer
// either one shared counter with xadd (lock contention) or per-thread
// slots packed into one cache line (false sharing). Threads run a fixed
// iteration count of atomic-plus-compute work with no barriers, so the
// interleaving pressure stays on the shared line.
func ctnRecipe(name string, n int, falseSharing bool) Recipe {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %d-thread ", name, n)
	if falseSharing {
		b.WriteString("false-sharing kernel\n")
	} else {
		b.WriteString("lock-contention kernel\n")
	}
	b.WriteString("\t.text\n\t.global _start\n_start:\n")
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, "\tmovi r0, 56\n\tmovi r1, 0\n")
		fmt.Fprintf(&b, "\tlimm r2, tstack%d+16384\n", i)
		fmt.Fprintf(&b, "\tlimm r3, worker%d\n", i)
		b.WriteString("\tsyscall\n")
	}
	b.WriteString("\tlimm rsp, tstack0+16384\n\tmovi r7, 0\n\tjmp  workbody\n")
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, "worker%d:\n\tmovi r7, %d\n\tjmp  workbody\n", i, i)
	}
	b.WriteString(`
workbody:
	limm r12, line
`)
	if falseSharing {
		// Each thread owns an adjacent 8-byte slot of the same line.
		b.WriteString("\tshli r5, r7, 3\n\tadd  r12, r12, r5\n")
	}
	fmt.Fprintf(&b, "\tmovi r9, %d\n", 101)
	b.WriteString("\tmovi r8, 0\nwloop:\n")
	if falseSharing {
		b.WriteString("\tld.q r5, [r12]\n\taddi r5, r5, 1\n\tst.q r5, [r12]\n")
	} else {
		b.WriteString("\tmovi r5, 1\n\txadd r5, [r12]\n")
	}
	b.WriteString(`	muli r9, r9, 1103515245
	addi r9, r9, 12345
	xor  r10, r10, r9
	addi r8, r8, 1
	cmpi r8, 60000
	jnz  wloop
	movi r0, 60
	movi r1, 0
	syscall
	.data
	.align 64
line:	.space 64
	.bss
	.align 4096
`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "tstack%d:\t.space 16384\n", i)
	}
	return Recipe{
		Name: name, Threads: n, Asm: b.String(),
		ApproxInstr: uint64(n) * 60000 * 9,
	}
}
