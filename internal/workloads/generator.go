// Package workloads generates the synthetic benchmark suite standing in for
// SPEC CPU2006/CPU2017 (which are proprietary and cannot ship with this
// reproduction — see DESIGN.md).
//
// Each benchmark is a Recipe: a set of phases (loop kernels with distinct
// working-set sizes, access strides, branch entropy and instruction mixes)
// and a phase sequence script. Phased execution is exactly what the
// SimPoint methodology exploits, so region selection, checkpointing and
// simulation all exercise the same code paths they would on the real
// suites. Multi-threaded recipes use an OpenMP-like fork/barrier structure
// with active (spinning) wait, reproducing the spin-loop behaviour that
// drives the paper's Fig. 11 observations.
package workloads

import (
	"fmt"
	"math/rand"
	"strings"

	"elfie/internal/asm"
	"elfie/internal/elfobj"
)

// Phase is one program phase: a loop kernel with characteristic behaviour.
type Phase struct {
	// WorkingSetKB is the data touched by the phase (rounded to a power of
	// two internally). Small sets are cache-resident; large ones stream.
	WorkingSetKB int
	// StrideBytes is the access stride (8 = sequential, 64+ = line-hopping).
	StrideBytes int
	// BranchEntropyPct is the share of iterations with a data-dependent
	// (hard-to-predict) branch, 0..100.
	BranchEntropyPct int
	// MulPct mixes long-latency multiplies/divides, 0..100.
	MulPct int
	// StorePct is the share of iterations that also write, 0..100.
	StorePct int
	// Iterations per phase visit.
	Iterations int
	// Vector adds 128-bit vector ops to the kernel.
	Vector bool
}

// Recipe is one synthetic benchmark.
type Recipe struct {
	Name     string
	Threads  int // 1 = single-threaded; >1 = OpenMP-like
	Phases   []Phase
	Sequence []int // phase script: indices into Phases
	// FileInput makes the program open and read /input.dat during startup
	// and consult the data inside phases (pre-region descriptor use).
	FileInput bool
	// Seed perturbs generated constants.
	Seed int64
	// Asm, when non-empty, is the recipe's complete assembly source: the
	// phase generator is bypassed and the source is assembled as-is. The
	// corpus kernels (mmap churn, fd servers, self-modifying code, …) are
	// Asm recipes — behaviours the phase model cannot express.
	Asm string
	// ApproxInstr is the dynamic instruction estimate for Asm recipes
	// (phase recipes derive theirs from the phase script).
	ApproxInstr uint64
}

// ApproxInstructions estimates the dynamic instruction count of a recipe.
func (r *Recipe) ApproxInstructions() uint64 {
	if r.Asm != "" {
		return r.ApproxInstr
	}
	perIter := uint64(12)
	var total uint64
	for _, pi := range r.Sequence {
		total += uint64(r.Phases[pi].Iterations) * perIter
	}
	if r.Threads > 1 {
		total *= uint64(r.Threads)
	}
	return total
}

// Generate emits the PVM assembly source for a recipe.
func Generate(r Recipe) string {
	if r.Asm != "" {
		return r.Asm
	}
	if r.Threads > 1 {
		return generateMT(r)
	}
	return generateST(r)
}

// Build assembles and links a recipe into an executable.
func Build(r Recipe) (*elfobj.File, error) {
	src := Generate(r)
	exe, err := asm.Program(src)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %v", r.Name, err)
	}
	return exe, nil
}

// pow2 rounds up to a power of two.
func pow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Register conventions inside generated kernels:
//
//	r8  loop counter        r9  LCG state         r10 accumulator
//	r12 scratch             r13 array base        r4/r5 address/data
//	r14 thread slice base (MT)
func emitPhaseBody(b *strings.Builder, r *Recipe, k int, rng *rand.Rand, mt bool) {
	p := r.Phases[k]
	ws := pow2(p.WorkingSetKB * 1024)
	if ws < 4096 {
		ws = 4096
	}
	stride := p.StrideBytes
	if stride < 8 {
		stride = 8
	}
	mulA := 1103515245 + rng.Intn(1000)*2 // keep odd
	fmt.Fprintf(b, "phase%d:\n", k)
	base := "r13"
	if mt {
		base = "r14"
	}
	fmt.Fprintf(b, "\tmovi r8, 0\n")
	fmt.Fprintf(b, "ploop%d:\n", k)
	// LCG step.
	fmt.Fprintf(b, "\tmuli r9, r9, %d\n", mulA)
	fmt.Fprintf(b, "\taddi r9, r9, 12345\n")
	// Address: ((r9>>7) * stride) & (ws-1), 8-aligned.
	fmt.Fprintf(b, "\tshri r4, r9, 7\n")
	fmt.Fprintf(b, "\tmuli r4, r4, %d\n", stride)
	fmt.Fprintf(b, "\tandi r4, r4, %d\n", (ws-1)&^7)
	fmt.Fprintf(b, "\tlea1 r4, %s, r4, 0\n", base)
	fmt.Fprintf(b, "\tld.q r5, [r4]\n")
	fmt.Fprintf(b, "\tadd  r10, r10, r5\n")
	if p.StorePct > 0 {
		// Store on iterations where the LCG low bits fall under the
		// percentage (approximately).
		thresh := p.StorePct * 256 / 100
		fmt.Fprintf(b, "\tandi r12, r9, 255\n")
		fmt.Fprintf(b, "\tcmpi r12, %d\n", thresh)
		fmt.Fprintf(b, "\tjae  pnost%d\n", k)
		fmt.Fprintf(b, "\tst.q r10, [r4]\n")
		fmt.Fprintf(b, "pnost%d:\n", k)
	}
	if p.MulPct > 0 {
		thresh := p.MulPct * 256 / 100
		fmt.Fprintf(b, "\tshri r12, r9, 8\n")
		fmt.Fprintf(b, "\tandi r12, r12, 255\n")
		fmt.Fprintf(b, "\tcmpi r12, %d\n", thresh)
		fmt.Fprintf(b, "\tjae  pnomul%d\n", k)
		fmt.Fprintf(b, "\tmuli r10, r10, 17\n")
		fmt.Fprintf(b, "\tmuli r10, r10, 23\n")
		fmt.Fprintf(b, "pnomul%d:\n", k)
	}
	if p.Vector {
		fmt.Fprintf(b, "\tandi r12, r4, -16\n")
		fmt.Fprintf(b, "\tvld  v0, [r12]\n")
		fmt.Fprintf(b, "\tvaddq v1, v1, v0\n")
	}
	if p.BranchEntropyPct > 0 {
		// A branch whose direction follows LCG bits: unpredictable in
		// proportion to the entropy percentage.
		thresh := p.BranchEntropyPct * 256 / 100
		fmt.Fprintf(b, "\tshri r12, r9, 16\n")
		fmt.Fprintf(b, "\tandi r12, r12, 255\n")
		fmt.Fprintf(b, "\tcmpi r12, %d\n", thresh)
		fmt.Fprintf(b, "\tjae  pskip%d\n", k)
		fmt.Fprintf(b, "\txori r10, r10, 0x5a\n")
		fmt.Fprintf(b, "pskip%d:\n", k)
	}
	fmt.Fprintf(b, "\taddi r8, r8, 1\n")
	fmt.Fprintf(b, "\tcmpi r8, %d\n", p.Iterations)
	fmt.Fprintf(b, "\tjnz  ploop%d\n", k)
	fmt.Fprintf(b, "\tret\n")
}

// maxWorkingSet returns the largest phase working set in bytes.
func maxWorkingSet(r *Recipe) int {
	ws := 4096
	for _, p := range r.Phases {
		if s := pow2(p.WorkingSetKB * 1024); s > ws {
			ws = s
		}
	}
	return ws
}

func generateST(r Recipe) string {
	rng := rand.New(rand.NewSource(r.Seed))
	var b strings.Builder
	fmt.Fprintf(&b, "# synthetic benchmark %s (single-threaded)\n", r.Name)
	b.WriteString("\t.text\n\t.global _start\n_start:\n")
	fmt.Fprintf(&b, "\tmovi r9, %d\n", 7+rng.Intn(1000))
	b.WriteString("\tlimm r13, arena\n")
	if r.FileInput {
		b.WriteString(`	movi r0, 2          # open("/input.dat")
	limm r1, inpath
	movi r2, 0
	syscall
	mov  r11, r0
	movi r0, 0          # read a seed block
	mov  r1, r11
	limm r2, inbuf
	movi r3, 64
	syscall
	limm r2, inbuf
	ld.q r12, [r2]
	add  r9, r9, r12
`)
	}
	// Phase script.
	for vi, pi := range r.Sequence {
		fmt.Fprintf(&b, "\tcall phase%d    # visit %d\n", pi, vi)
		if r.FileInput && vi%16 == 7 {
			// Periodic reads through the pre-opened descriptor. The length
			// check makes control flow depend on the descriptor state: an
			// ELFie without SYSSTATE support takes the failure path.
			b.WriteString(`	movi r0, 0
	mov  r1, r11
	limm r2, inbuf
	movi r3, 32
	syscall
	cmpi r0, 32
	jnz  readfail
`)
		}
	}
	b.WriteString("\tmovi r0, 231\n\tmovi r1, 0\n\tsyscall\n")
	if r.FileInput {
		b.WriteString("readfail:\n\tmovi r0, 231\n\tmovi r1, 7\n\tsyscall\n")
	}
	b.WriteString("\n")
	for k := range r.Phases {
		emitPhaseBody(&b, &r, k, rng, false)
	}
	// Data.
	b.WriteString("\n\t.data\n")
	if r.FileInput {
		b.WriteString("inpath:\t.asciz \"/input.dat\"\ninbuf:\t.space 64\n")
	}
	b.WriteString("\t.bss\n\t.align 4096\n")
	fmt.Fprintf(&b, "arena:\t.space %d\n", maxWorkingSet(&r))
	return b.String()
}

// generateMT emits an OpenMP-like program: the main thread forks workers
// once, then runs the phase script as a series of parallel regions with a
// spinning barrier after each (active wait policy).
func generateMT(r Recipe) string {
	rng := rand.New(rand.NewSource(r.Seed))
	var b strings.Builder
	n := r.Threads
	fmt.Fprintf(&b, "# synthetic benchmark %s (%d threads, OpenMP-like, active wait)\n", r.Name, n)
	b.WriteString("\t.text\n\t.global _start\n_start:\n")
	fmt.Fprintf(&b, "\tmovi r9, %d\n", 7+rng.Intn(1000))
	// Fork workers 1..n-1.
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, "\tmovi r0, 56\n\tmovi r1, 0\n")
		fmt.Fprintf(&b, "\tlimm r2, tstack%d+16384\n", i)
		fmt.Fprintf(&b, "\tlimm r3, worker%d\n", i)
		b.WriteString("\tsyscall\n")
	}
	// Main thread is worker 0, on its own work stack.
	b.WriteString("\tlimm rsp, tstack0+16384\n")
	b.WriteString("\tmovi r1, 0\n")
	b.WriteString("\tjmp  workbody\n")
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, "worker%d:\n", i)
		fmt.Fprintf(&b, "\tmovi r9, %d\n", 100+i*37)
		fmt.Fprintf(&b, "\tmovi r1, %d\n", i)
		b.WriteString("\tjmp  workbody\n")
	}
	// Common worker body: r1 = worker id.
	b.WriteString(`
# common worker body: execute the phase script with a spin barrier after
# each parallel region (OpenMP active wait)
workbody:
	mov  r7, r1          # worker id
	limm r14, arena
	muli r12, r7, ` + fmt.Sprint(maxWorkingSet(&r)) + `
	add  r14, r14, r12   # private slice base
`)
	for vi, pi := range r.Sequence {
		fmt.Fprintf(&b, "\tcall phase%d    # parallel region, visit %d\n", pi, vi)
		// Barrier vi: arrive, then spin until all n arrived.
		fmt.Fprintf(&b, "\tlimm r12, barrier\n")
		fmt.Fprintf(&b, "\tmovi r5, 1\n")
		fmt.Fprintf(&b, "\txadd r5, [r12]\n")
		fmt.Fprintf(&b, "bwait%d:\n", vi)
		fmt.Fprintf(&b, "\tld.q r5, [r12]\n")
		fmt.Fprintf(&b, "\tcmpi r5, %d\n", (vi+1)*n)
		fmt.Fprintf(&b, "\tjae  bdone%d\n", vi)
		fmt.Fprintf(&b, "\tpause\n")
		fmt.Fprintf(&b, "\tjmp  bwait%d\n", vi)
		fmt.Fprintf(&b, "bdone%d:\n", vi)
	}
	b.WriteString("\tmovi r0, 60\n\tmovi r1, 0\n\tsyscall    # exit thread\n\n")
	for k := range r.Phases {
		emitPhaseBody(&b, &r, k, rng, true)
	}
	b.WriteString("\n\t.data\nbarrier:\t.quad 0\n")
	b.WriteString("\t.bss\n\t.align 4096\n")
	fmt.Fprintf(&b, "arena:\t.space %d\n", maxWorkingSet(&r)*n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "tstack%d:\t.space 16384\n", i)
	}
	return b.String()
}
