package coresim

import (
	"testing"

	"elfie/internal/core"
	"elfie/internal/elfobj"
	"elfie/internal/kernel"
	"elfie/internal/pinplay"
	"elfie/internal/sysstate"
	"elfie/internal/vm"
	"elfie/internal/workloads"
)

// makeELFie prepares an x264-like single-region ELFie with some system-call
// activity (file reads), as in the Table IV case study.
func makeELFie(t *testing.T) (*elfobj.File, *sysstate.State, uint64) {
	t.Helper()
	r, ok := workloads.ByName("625.x264_t")
	if !ok {
		t.Fatal("x264 recipe missing")
	}
	r.FileInput = true
	exe, err := workloads.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	fs := kernel.NewFS()
	fs.WriteFile("/input.dat", workloads.InputFile())
	k := kernel.New(fs, 1)
	m, err := vm.NewLoaded(k, exe, []string{r.Name}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 1_000_000_000
	const regionLen = 1_000_000
	pb, err := pinplay.Log(m, pinplay.LogOptions{
		Name: "x264", RegionStart: 50_000, RegionLength: regionLen,
	}.Fat())
	if err != nil {
		t.Fatal(err)
	}
	st, err := sysstate.Analyze(pb)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Convert(pb, core.Options{
		GracefulExit: true,
		Marker:       core.MarkerSimics,
		MarkerTag:    0x99,
		SysState:     st.Ref("/sysstate"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Exe, st, regionLen
}

func runELFie(t *testing.T, exe *elfobj.File, st *sysstate.State, cfg Config) *Result {
	t.Helper()
	fs := kernel.NewFS()
	fs.WriteFile("/input.dat", workloads.InputFile())
	if st != nil {
		st.Install(fs, "/sysstate")
	}
	k := kernel.New(fs, 7)
	m, err := vm.NewLoaded(k, exe, []string{"elfie"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 50_000_000
	res, err := Simulate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.FatalFault != nil {
		t.Fatalf("elfie faulted: %v", m.FatalFault)
	}
	return res
}

// TestUserVsFullSystem reproduces the Table IV comparison on one ELFie.
func TestUserVsFullSystem(t *testing.T) {
	exe, st, regionLen := makeELFie(t)

	sde := Skylake1(FrontendSDE)
	sde.StartMarker = 0x99
	user := runELFie(t, exe, st, sde)

	sim := Skylake1(FrontendSimics)
	sim.StartMarker = 0x99
	sim.TimerIntervalInstr = 50_000
	full := runELFie(t, exe, st, sim)

	// User-space-only: no ring-0 instructions, count ~= region length.
	if user.Ring0Instr != 0 {
		t.Errorf("SDE front-end simulated %d kernel instructions", user.Ring0Instr)
	}
	if user.Ring3Instr < regionLen || user.Ring3Instr > regionLen+regionLen/10 {
		t.Errorf("user-mode instructions = %d, region = %d", user.Ring3Instr, regionLen)
	}

	// Full-system: same ring-3 work plus a few percent of ring-0.
	if full.Ring0Instr == 0 {
		t.Fatal("full-system mode injected no kernel instructions")
	}
	ratio := float64(full.Ring0Instr) / float64(full.Ring3Instr)
	if ratio < 0.002 || ratio > 0.2 {
		t.Errorf("kernel share = %.2f%%, expected a few percent", 100*ratio)
	}
	if d := int64(full.Ring3Instr) - int64(user.Ring3Instr); d < -1000 || d > 1000 {
		t.Errorf("ring-3 instructions differ: %d vs %d", full.Ring3Instr, user.Ring3Instr)
	}

	// Kernel interference costs more than its instruction share, and the
	// data footprint grows.
	if full.Cycles <= user.Cycles {
		t.Errorf("full-system not slower: %d vs %d cycles", full.Cycles, user.Cycles)
	}
	slowdown := float64(full.Cycles)/float64(user.Cycles) - 1
	if slowdown <= ratio/2 {
		t.Errorf("runtime inflation %.2f%% not disproportionate to instr share %.2f%%",
			100*slowdown, 100*ratio)
	}
	if full.FootprintBytes <= user.FootprintBytes {
		t.Errorf("footprint did not grow: %d vs %d", full.FootprintBytes, user.FootprintBytes)
	}
	t.Logf("user: %d instr, %d cycles, %d KiB footprint", user.Ring3Instr, user.Cycles, user.FootprintBytes>>10)
	t.Logf("full: %d+%d instr (+%.1f%%), %d cycles (+%.1f%%), %d KiB footprint (+%.1f%%)",
		full.Ring3Instr, full.Ring0Instr, 100*ratio,
		full.Cycles, 100*slowdown,
		full.FootprintBytes>>10,
		100*(float64(full.FootprintBytes)/float64(user.FootprintBytes)-1))
}

func TestMarkerGating(t *testing.T) {
	exe, st, _ := makeELFie(t)
	cfg := Skylake1(FrontendSDE)
	cfg.StartMarker = 0x99
	res := runELFie(t, exe, st, cfg)
	// Startup code (remap loops etc.) must not be simulated: the count
	// starts only at the marker.
	gated := res.Ring3Instr

	cfg2 := Skylake1(FrontendSDE)
	cfg2.StartMarker = 0 // simulate everything
	res2 := runELFie(t, exe, st, cfg2)
	if res2.Ring3Instr <= gated {
		t.Errorf("ungated %d <= gated %d", res2.Ring3Instr, gated)
	}
}

func TestCPIAndStats(t *testing.T) {
	exe, st, _ := makeELFie(t)
	cfg := Skylake1(FrontendSDE)
	cfg.StartMarker = 0x99
	res := runELFie(t, exe, st, cfg)
	if cpi := res.CPI(); cpi < 0.1 || cpi > 30 {
		t.Errorf("CPI = %v", cpi)
	}
	if res.RuntimeNs <= 0 {
		t.Error("no runtime")
	}
	if res.DTLBMissRate < 0 || res.DTLBMissRate > 1 {
		t.Errorf("DTLB miss rate = %v", res.DTLBMissRate)
	}
}
