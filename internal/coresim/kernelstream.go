package coresim

import (
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/uarch"
)

// syscallTimerTick is the pseudo-syscall number used for timer interrupts.
const syscallTimerTick = ^uint64(0)

// Kernel address-space layout for the synthetic ring-0 streams.
const (
	kernelTextBase = 0xffffffff81000000
	kernelTextSpan = 64 << 10 // hot kernel text per call class
	kernelDataBase = 0xffff888000000000
)

// kernelStream synthesizes deterministic ring-0 instruction streams per
// system call. Each call class has a path length and a data working set;
// the stream walks kernel text (polluting the I-cache and ITLB) and touches
// kernel data structures (polluting the D-cache and DTLB) — the mechanism
// behind Table IV's footprint and runtime inflation.
type kernelStream struct {
	lcg uint64
}

func newKernelStream() *kernelStream {
	return &kernelStream{lcg: 0x2545F4914F6CDD1D}
}

// profile returns (instructions, dataBytes, entryOffset) for a call. The
// data working set models the kernel structures (page cache, dentries,
// scheduler queues) each call class walks: large relative to its
// instruction count, which is what makes the OS footprint contribution
// disproportionate (Table IV).
func profile(num uint64, bytes int) (int, int, uint64) {
	switch num {
	case kernel.SysRead:
		return 1500 + bytes/8, 24576 + 2*bytes, 0x10000
	case kernel.SysWrite:
		return 1200 + bytes/8, 16384 + 2*bytes, 0x20000
	case kernel.SysOpen:
		return 2600, 49152, 0x30000
	case kernel.SysClose:
		return 600, 2048, 0x38000
	case kernel.SysMmap, kernel.SysMunmap, kernel.SysMprotect:
		return 1900, 32768, 0x40000
	case kernel.SysBrk:
		return 900, 8192, 0x48000
	case kernel.SysGettimeofday, kernel.SysClockGettime:
		return 260, 512, 0x50000 // vDSO-sized fast path
	case kernel.SysClone:
		return 4200, 65536, 0x60000
	case kernel.SysExit, kernel.SysExitGroup:
		return 2200, 32768, 0x70000
	case kernel.SysPerfOpen:
		return 3200, 32768, 0x80000
	case syscallTimerTick:
		return 800, 16384, 0x90000 // scheduler tick
	default:
		return 800, 4096, 0xa0000
	}
}

func (ks *kernelStream) rand() uint64 {
	ks.lcg = ks.lcg*6364136223846793005 + 1442695040888963407
	return ks.lcg >> 16
}

// emit feeds one call's synthetic kernel stream into a core. Kernel code
// paths are hot (small text, predictable branches) but walk data structures
// sequentially, so each call touches many unique cache lines at moderate
// cycle cost — interference comes from cache/TLB displacement rather than
// from the kernel instructions themselves being slow.
func (ks *kernelStream) emit(core *uarch.OOOCore, num uint64, bytes int) {
	n, ws, entry := profile(num, bytes)
	pc := uint64(kernelTextBase) + entry
	dataBase := uint64(kernelDataBase) + uint64(entry)<<8
	// Per-call cursor: successive calls of the same class walk different
	// parts of their structure space, growing the unique footprint.
	cursor := dataBase + (ks.rand()%16)*uint64(ws)
	seq := uint64(0)
	for i := 0; i < n; i++ {
		d := uarch.DynInst{TID: 0, PC: pc, Kernel: true}
		switch r := ks.rand() % 10; {
		case r < 3: // sequential kernel structure walk
			d.Ins = isa.Inst{Op: isa.LDQ, A: 1, B: 2}
			d.Class = isa.ClassLoad
			d.MemR = true
			d.MemAddr = cursor + seq*32%uint64(ws)
			d.MemSize = 8
			seq++
		case r < 4: // kernel store
			d.Ins = isa.Inst{Op: isa.STQ, A: 1, B: 2}
			d.Class = isa.ClassStore
			d.MemW = true
			d.MemAddr = cursor + seq*32%uint64(ws)
			d.MemSize = 8
		case r < 6: // kernel branch: mostly-taken fast-path checks
			d.Ins = isa.Inst{Op: isa.JNZ}
			d.Class = isa.ClassBranch
			d.Branch = true
			d.Taken = ks.rand()%16 != 0
			// Short hops within the hot handler text.
			pc = kernelTextBase + uint64(entry) + (pc+64)%4096
		default:
			d.Ins = isa.Inst{Op: isa.ADD, A: 1, B: 2, C: 3}
			d.Class = isa.ClassALU
		}
		core.Consume(&d)
		pc += 8
	}
}
