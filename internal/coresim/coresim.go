// Package coresim implements the CoreSim-style detailed x86 many-core
// simulator of the paper's §IV.C case study, with two front-ends:
//
//   - FrontendSDE: user-space-only simulation (the SDE front-end) — only
//     ring-3 instructions reach the timing model;
//   - FrontendSimics: full-system simulation — system calls and periodic
//     timer interrupts inject synthetic kernel (ring-0) instruction
//     streams that share the caches and TLBs with the application, so the
//     "relatively few OS instructions" exert disproportionate pressure on
//     the memory hierarchy, as Table IV reports.
package coresim

import (
	"elfie/internal/harness"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/uarch"
	"elfie/internal/vm"
)

// Frontend selects the simulation front-end.
type Frontend int

// Front-ends.
const (
	FrontendSDE Frontend = iota
	FrontendSimics
)

// Config selects the simulated machine.
type Config struct {
	Cores    int
	Core     uarch.CoreCfg
	Hier     uarch.HierarchyCfg
	Frontend Frontend
	// TimerIntervalInstr injects a timer-interrupt kernel stream every N
	// user instructions in full-system mode (default 100k).
	TimerIntervalInstr uint64
	FreqGHz            float64
	// StartMarker skips everything before the given MAGIC/SSCMARK tag.
	StartMarker uint32
}

// Skylake1 is the Table IV configuration: one detailed Skylake core.
func Skylake1(fe Frontend) Config {
	return Config{
		Cores:              1,
		Core:               uarch.SkylakeCore(),
		Hier:               uarch.DesktopHierarchy(1),
		Frontend:           fe,
		TimerIntervalInstr: 100_000,
		FreqGHz:            3.0,
	}
}

// Result is a detailed-simulation outcome.
type Result struct {
	// Ring3Instr / Ring0Instr split user and kernel instructions.
	Ring3Instr uint64
	Ring0Instr uint64
	Cycles     uint64
	RuntimeNs  float64
	// FootprintBytes is the total data footprint (unique lines touched).
	FootprintBytes uint64
	// Cache/TLB statistics.
	L2MissRate   float64
	DTLBMissRate float64
	ITLBMissRate float64
	PerCore      []uarch.CoreStats
}

// CPI returns cycles per (total) instruction.
func (r *Result) CPI() float64 {
	n := r.Ring3Instr + r.Ring0Instr
	if n == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(n)
}

// Sim is a configured CoreSim instance attached to one machine run.
type Sim struct {
	cfg    Config
	cores  []*uarch.OOOCore
	hier   *uarch.Hierarchy
	feeder *uarch.Feeder

	measuring bool
	kstream   *kernelStream
	userInstr uint64
	lastTick  uint64
}

// Attach installs the simulator on a machine (composing with existing
// hooks, e.g. replay injection).
func Attach(m *vm.Machine, cfg Config) *Sim {
	if cfg.Cores == 0 {
		cfg.Cores = 1
	}
	if cfg.TimerIntervalInstr == 0 {
		cfg.TimerIntervalInstr = 100_000
	}
	s := &Sim{cfg: cfg, measuring: cfg.StartMarker == 0}
	s.hier = uarch.NewHierarchy(cfg.Hier, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		s.cores = append(s.cores, uarch.NewOOOCore(cfg.Core, s.hier, i))
	}
	s.kstream = newKernelStream()

	prevMarker := m.Hooks.OnMarker
	m.Hooks.OnMarker = func(t *vm.Thread, op isa.Op, tag uint32) {
		if prevMarker != nil {
			prevMarker(t, op, tag)
		}
		if !s.measuring && tag == cfg.StartMarker &&
			(op == isa.MAGIC || op == isa.SSCMARK) {
			s.measuring = true
		}
	}
	// Full-system: watch system calls to trigger kernel-stream injection.
	if cfg.Frontend == FrontendSimics {
		prevSys := m.Hooks.OnSyscall
		m.Hooks.OnSyscall = func(t *vm.Thread, num uint64, res kernel.Result) {
			if prevSys != nil {
				prevSys(t, num, res)
			}
			if s.measuring {
				s.injectKernel(t.TID, num, res)
			}
		}
	}
	s.feeder = uarch.NewFeeder(m, uarch.ConsumerFunc(s.consume))
	return s
}

func (s *Sim) consume(d *uarch.DynInst) {
	if !s.measuring {
		return
	}
	s.cores[d.TID%len(s.cores)].Consume(d)
	s.userInstr++
	if s.cfg.Frontend == FrontendSimics &&
		s.userInstr-s.lastTick >= s.cfg.TimerIntervalInstr {
		s.lastTick = s.userInstr
		s.kstream.emit(s.cores[d.TID%len(s.cores)], syscallTimerTick, 0)
	}
}

// injectKernel feeds the synthetic ring-0 stream for one system call into
// the core that executed it.
func (s *Sim) injectKernel(tid int, num uint64, res kernel.Result) {
	bytes := 0
	if num == kernel.SysRead || num == kernel.SysWrite {
		if int64(res.Ret) > 0 {
			bytes = int(res.Ret)
		}
	}
	s.kstream.emit(s.cores[tid%len(s.cores)], num, bytes)
}

// Finish closes the simulation and returns the result.
func (s *Sim) Finish() *Result {
	s.feeder.Flush()
	res := &Result{FootprintBytes: s.hier.FootprintBytes()}
	var dtlbA, dtlbM, itlbA, itlbM uint64
	for _, c := range s.cores {
		st := *c.Finish()
		res.PerCore = append(res.PerCore, st)
		res.Ring0Instr += st.KernelInstr
		res.Ring3Instr += st.Instructions - st.KernelInstr
		if st.Cycles > res.Cycles {
			res.Cycles = st.Cycles
		}
		dtlbA += c.DTLB.Accesses
		dtlbM += c.DTLB.Misses
		itlbA += c.ITLB.Accesses
		itlbM += c.ITLB.Misses
	}
	if s.cfg.FreqGHz > 0 {
		res.RuntimeNs = float64(res.Cycles) / s.cfg.FreqGHz
	}
	if dtlbA > 0 {
		res.DTLBMissRate = float64(dtlbM) / float64(dtlbA)
	}
	if itlbA > 0 {
		res.ITLBMissRate = float64(itlbM) / float64(itlbA)
	}
	var l2a, l2m uint64
	for i := 0; i < len(s.cores); i++ {
		l2a += s.hier.L2For(i).Accesses
		l2m += s.hier.L2For(i).Misses
	}
	if l2a > 0 {
		res.L2MissRate = float64(l2m) / float64(l2a)
	}
	return res
}

// Simulate runs the machine to completion under the simulator.
func Simulate(m *vm.Machine, cfg Config) (*Result, error) {
	s := Attach(m, cfg)
	if err := harness.WrapRun(harness.ModeSim, m.Run()); err != nil {
		return nil, err
	}
	return s.Finish(), nil
}

// SimulateSession runs a harness-built session to completion under the
// simulator.
func SimulateSession(sess *harness.Session, cfg Config) (*Result, error) {
	s := Attach(sess.Machine, cfg)
	if err := sess.Run(); err != nil {
		return nil, err
	}
	return s.Finish(), nil
}
