// Package pin is the dynamic-instrumentation framework of the tool-chain —
// the stand-in for Intel Pin in the paper's stack.
//
// A Tool is a bundle of analysis callbacks. An Engine attaches one or more
// tools to a vm.Machine and multiplexes the machine's hooks across them, so
// several pintools (the PinPlay logger, the BBV profiler, the sysstate
// analyzer) can observe one execution simultaneously, exactly as Pin-based
// tool stacks compose.
package pin

import (
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/mem"
	"elfie/internal/vm"
)

// Tool is one analysis tool's callbacks; nil callbacks are skipped.
// Filter-style callbacks (SyscallFilter, OnFault) are consulted in
// attachment order; the first tool that handles the event wins.
type Tool struct {
	Name          string
	OnIns         func(t *vm.Thread, pc uint64, ins isa.Inst)
	OnMemRead     func(t *vm.Thread, addr uint64, size int)
	OnMemWrite    func(t *vm.Thread, addr uint64, size int)
	OnBranch      func(t *vm.Thread, pc, target uint64, taken bool)
	OnMarker      func(t *vm.Thread, op isa.Op, tag uint32)
	SyscallFilter func(t *vm.Thread, num uint64) (kernel.Result, bool)
	OnSyscall     func(t *vm.Thread, num uint64, res kernel.Result)
	OnFault       func(t *vm.Thread, f *mem.Fault) bool
	OnThreadStart func(t *vm.Thread)
	OnThreadExit  func(t *vm.Thread)
}

// Engine multiplexes tools onto one machine.
type Engine struct {
	Machine *vm.Machine
	tools   []*Tool
}

// NewEngine wraps a machine. Attach tools before running.
func NewEngine(m *vm.Machine) *Engine {
	e := &Engine{Machine: m}
	e.install()
	return e
}

// Attach adds a tool. Tools attached earlier see events first.
func (e *Engine) Attach(t *Tool) {
	e.tools = append(e.tools, t)
	e.install()
}

// Detach removes a tool by identity.
func (e *Engine) Detach(t *Tool) {
	for i, x := range e.tools {
		if x == t {
			e.tools = append(e.tools[:i], e.tools[i+1:]...)
			e.install()
			return
		}
	}
}

// Run runs the machine with all attached tools.
func (e *Engine) Run() error { return e.Machine.Run() }

// install (re)builds the machine's hooks from the attached tools. Only hook
// kinds that at least one tool actually provides are installed: the VM uses
// the absence of per-instruction observation hooks to select its decoded-
// block fast path, so an engine whose tools only filter syscalls (or no
// tools at all) does not tax execution.
func (e *Engine) install() {
	m := e.Machine
	h := vm.Hooks{}
	var needIns, needRead, needWrite, needBranch, needMarker,
		needFilter, needSyscall, needFault, needStart, needExit bool
	for _, t := range e.tools {
		needIns = needIns || t.OnIns != nil
		needRead = needRead || t.OnMemRead != nil
		needWrite = needWrite || t.OnMemWrite != nil
		needBranch = needBranch || t.OnBranch != nil
		needMarker = needMarker || t.OnMarker != nil
		needFilter = needFilter || t.SyscallFilter != nil
		needSyscall = needSyscall || t.OnSyscall != nil
		needFault = needFault || t.OnFault != nil
		needStart = needStart || t.OnThreadStart != nil
		needExit = needExit || t.OnThreadExit != nil
	}
	if needIns {
		h.OnIns = func(t *vm.Thread, pc uint64, ins isa.Inst) {
			for _, tool := range e.tools {
				if tool.OnIns != nil {
					tool.OnIns(t, pc, ins)
				}
			}
		}
	}
	if needRead {
		h.OnMemRead = func(t *vm.Thread, addr uint64, size int) {
			for _, tool := range e.tools {
				if tool.OnMemRead != nil {
					tool.OnMemRead(t, addr, size)
				}
			}
		}
	}
	if needWrite {
		h.OnMemWrite = func(t *vm.Thread, addr uint64, size int) {
			for _, tool := range e.tools {
				if tool.OnMemWrite != nil {
					tool.OnMemWrite(t, addr, size)
				}
			}
		}
	}
	if needBranch {
		h.OnBranch = func(t *vm.Thread, pc, target uint64, taken bool) {
			for _, tool := range e.tools {
				if tool.OnBranch != nil {
					tool.OnBranch(t, pc, target, taken)
				}
			}
		}
	}
	if needMarker {
		h.OnMarker = func(t *vm.Thread, op isa.Op, tag uint32) {
			for _, tool := range e.tools {
				if tool.OnMarker != nil {
					tool.OnMarker(t, op, tag)
				}
			}
		}
	}
	if needFilter {
		h.SyscallFilter = func(t *vm.Thread, num uint64) (kernel.Result, bool) {
			for _, tool := range e.tools {
				if tool.SyscallFilter != nil {
					if res, handled := tool.SyscallFilter(t, num); handled {
						return res, true
					}
				}
			}
			return kernel.Result{}, false
		}
	}
	if needSyscall {
		h.OnSyscall = func(t *vm.Thread, num uint64, res kernel.Result) {
			for _, tool := range e.tools {
				if tool.OnSyscall != nil {
					tool.OnSyscall(t, num, res)
				}
			}
		}
	}
	if needFault {
		h.OnFault = func(t *vm.Thread, f *mem.Fault) bool {
			for _, tool := range e.tools {
				if tool.OnFault != nil && tool.OnFault(t, f) {
					return true
				}
			}
			return false
		}
	}
	if needStart {
		h.OnThreadStart = func(t *vm.Thread) {
			for _, tool := range e.tools {
				if tool.OnThreadStart != nil {
					tool.OnThreadStart(t)
				}
			}
		}
	}
	if needExit {
		h.OnThreadExit = func(t *vm.Thread) {
			for _, tool := range e.tools {
				if tool.OnThreadExit != nil {
					tool.OnThreadExit(t)
				}
			}
		}
	}
	m.Hooks = h
}

// ICounter is a trivial pintool counting instructions per thread; it is the
// canonical example tool and is used by tests and the replayer's
// instruction-budget end condition.
type ICounter struct {
	Tool
	PerThread map[int]uint64
	Total     uint64
}

// NewICounter returns an instruction-counting tool.
func NewICounter() *ICounter {
	ic := &ICounter{PerThread: make(map[int]uint64)}
	ic.Tool.Name = "icounter"
	ic.Tool.OnIns = func(t *vm.Thread, pc uint64, ins isa.Inst) {
		ic.PerThread[t.TID]++
		ic.Total++
	}
	return ic
}
