package pin

import (
	"testing"

	"elfie/internal/asm"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/vm"
)

func machineFor(t *testing.T, src string) *vm.Machine {
	t.Helper()
	exe, err := asm.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.NewFS(), 1)
	m, err := vm.NewLoaded(k, exe, []string{"p"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 1_000_000
	return m
}

const prog = `
	.text
	.global _start
_start:
	movi r8, 0
l:	addi r8, r8, 1
	sscmark 1
	ld.q r2, [rsp]
	st.q r2, [rsp]
	cmpi r8, 100
	jnz  l
	movi r0, 231
	movi r1, 0
	syscall
`

func TestMultiplexing(t *testing.T) {
	m := machineFor(t, prog)
	eng := NewEngine(m)
	ic1 := NewICounter()
	ic2 := NewICounter()
	var markers, reads, writes, branches, syscalls int
	tool := &Tool{
		Name:       "probe",
		OnMarker:   func(th *vm.Thread, op isa.Op, tag uint32) { markers++ },
		OnMemRead:  func(th *vm.Thread, addr uint64, sz int) { reads++ },
		OnMemWrite: func(th *vm.Thread, addr uint64, sz int) { writes++ },
		OnBranch:   func(th *vm.Thread, pc, tgt uint64, taken bool) { branches++ },
		OnSyscall:  func(th *vm.Thread, num uint64, res kernel.Result) { syscalls++ },
	}
	eng.Attach(&ic1.Tool)
	eng.Attach(tool)
	eng.Attach(&ic2.Tool)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ic1.Total != ic2.Total || ic1.Total != m.GlobalRetired {
		t.Errorf("counters: %d %d retired %d", ic1.Total, ic2.Total, m.GlobalRetired)
	}
	if markers != 100 || reads != 100 || writes != 100 || branches != 100 || syscalls != 1 {
		t.Errorf("events: markers=%d reads=%d writes=%d branches=%d syscalls=%d",
			markers, reads, writes, branches, syscalls)
	}
	if ic1.PerThread[0] != ic1.Total {
		t.Errorf("per-thread: %v", ic1.PerThread)
	}
}

func TestSyscallFilterFirstWins(t *testing.T) {
	m := machineFor(t, prog)
	eng := NewEngine(m)
	order := []string{}
	a := &Tool{Name: "a", SyscallFilter: func(th *vm.Thread, num uint64) (kernel.Result, bool) {
		order = append(order, "a")
		return kernel.Result{Action: kernel.ActExitGroup, ExitStatus: 9}, true
	}}
	b := &Tool{Name: "b", SyscallFilter: func(th *vm.Thread, num uint64) (kernel.Result, bool) {
		order = append(order, "b")
		return kernel.Result{}, false
	}}
	eng.Attach(b)
	eng.Attach(a)
	eng.Run()
	// b attached first, consulted first, declines; a handles.
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Errorf("order: %v", order)
	}
	if m.ExitStatus != 9 {
		t.Errorf("exit = %d (filter result not applied)", m.ExitStatus)
	}
}

func TestDetach(t *testing.T) {
	m := machineFor(t, prog)
	eng := NewEngine(m)
	ic := NewICounter()
	eng.Attach(&ic.Tool)
	eng.Detach(&ic.Tool)
	eng.Run()
	if ic.Total != 0 {
		t.Errorf("detached tool saw %d instructions", ic.Total)
	}
	// Detaching an unknown tool is a no-op.
	eng.Detach(&Tool{})
}

func TestThreadLifecycleHooks(t *testing.T) {
	m := machineFor(t, `
	.text
	.global _start
_start:
	movi r0, 56
	movi r1, 0
	limm r2, stk+4096
	limm r3, w
	syscall
	movi r0, 60
	syscall
w:	movi r0, 60
	syscall
	.bss
stk: .space 4096
`)
	eng := NewEngine(m)
	starts, exits := 0, 0
	eng.Attach(&Tool{
		OnThreadStart: func(th *vm.Thread) { starts++ },
		OnThreadExit:  func(th *vm.Thread) { exits++ },
	})
	eng.Run()
	// Thread 0 started before the engine attached; the clone is seen.
	if starts != 1 || exits != 2 {
		t.Errorf("starts=%d exits=%d", starts, exits)
	}
}
