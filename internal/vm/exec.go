package vm

import (
	"elfie/internal/fault"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/mem"
)

// runThread executes up to quantum instructions on t, returning how many
// actually retired. It stops early on yield (PAUSE/sched_yield), thread
// exit, machine halt, or an unhandled fault.
//
// When no per-instruction instrumentation is installed the decoded-block
// fast path runs instead (see block.go); both paths retire the identical
// architectural instruction stream.
func (m *Machine) runThread(t *Thread, quantum int) int {
	if m.fastPathOK() {
		return m.runThreadFast(t, quantum)
	}
	ran := 0
	for ran < quantum && t.Alive && !m.Halted && !m.stopReq.Load() {
		yielded, retired := m.step(t)
		if retired {
			ran++
		}
		if yielded {
			break
		}
	}
	return ran
}

// step executes one instruction. It returns (yielded, retired): yielded
// requests a scheduler switch; retired reports whether an instruction
// actually completed (a faulting instruction that the fault hook asks to
// retry does not retire).
func (m *Machine) step(t *Thread) (yielded, retired bool) {
	as := m.Proc.AS
	pc := t.Regs.PC

	// Fault injection: synthetic faults at a retired-instruction threshold.
	// A PageFault goes through the normal fault path (an OnFault hook may
	// recover it); an UngracefulExit kills the process outright — the
	// divergent-ELFie death mode.
	if m.FaultInj != nil {
		if pt, fire := m.FaultInj.VMFault(m.GlobalRetired); fire {
			f := &mem.Fault{Addr: pc, Access: mem.AccessExec}
			if pt == fault.UngracefulExit {
				m.fatalFault(t, f)
				return true, false
			}
			return m.handleFault(t, f), false
		}
	}

	// Fetch. Instructions are 8 bytes; LIMM needs 8 more.
	if err := as.Fetch(pc, m.fetchBuf[:isa.InstLen]); err != nil {
		return m.handleFault(t, err), false
	}
	n := isa.InstLen
	if isa.Op(m.fetchBuf[0]) == isa.LIMM {
		if err := as.Fetch(pc+isa.InstLen, m.fetchBuf[isa.InstLen:]); err != nil {
			return m.handleFault(t, err), false
		}
		n = isa.LimmLen
	}
	ins, _, err := isa.Decode(m.fetchBuf[:n])
	if err != nil {
		// Undecodable bytes behave like an illegal-instruction fault.
		m.fatalFault(t, &mem.Fault{Addr: pc, Access: mem.AccessExec})
		return true, false
	}

	if m.Hooks.OnIns != nil {
		m.Hooks.OnIns(t, pc, ins)
	}

	next := pc + ins.Len()
	r := &t.Regs
	g := &r.GPR
	// Register fields are masked to the architectural 0..15 range; encodings
	// with out-of-range fields alias into it rather than escaping the
	// register file (the block executor masks identically).
	a, b, c := isa.Reg(ins.A&15), isa.Reg(ins.B&15), isa.Reg(ins.C&15)
	imm := uint64(int64(ins.Imm))

	switch ins.Op {
	case isa.NOP, isa.FENCE:
	case isa.HLT:
		m.Halted = true
	case isa.PAUSE:
		yielded = !m.PauseDoesNotYield

	case isa.MOV:
		g[a] = g[b]
	case isa.MOVI:
		g[a] = imm
	case isa.LIMM:
		g[a] = ins.Imm64

	case isa.ADD:
		g[a] = g[b] + g[c]
	case isa.SUB:
		g[a] = g[b] - g[c]
	case isa.MUL:
		g[a] = g[b] * g[c]
	case isa.UDIV:
		if g[c] == 0 {
			g[a] = ^uint64(0)
		} else {
			g[a] = g[b] / g[c]
		}
	case isa.SDIV:
		if g[c] == 0 {
			g[a] = ^uint64(0)
		} else {
			g[a] = uint64(int64(g[b]) / int64(g[c]))
		}
	case isa.UREM:
		if g[c] == 0 {
			g[a] = g[b]
		} else {
			g[a] = g[b] % g[c]
		}
	case isa.AND:
		g[a] = g[b] & g[c]
	case isa.OR:
		g[a] = g[b] | g[c]
	case isa.XOR:
		g[a] = g[b] ^ g[c]
	case isa.SHL:
		g[a] = g[b] << (g[c] & 63)
	case isa.SHR:
		g[a] = g[b] >> (g[c] & 63)
	case isa.SAR:
		g[a] = uint64(int64(g[b]) >> (g[c] & 63))
	case isa.NOT:
		g[a] = ^g[b]
	case isa.NEG:
		g[a] = -g[b]

	case isa.ADDI:
		g[a] = g[b] + imm
	case isa.MULI:
		g[a] = g[b] * imm
	case isa.ANDI:
		g[a] = g[b] & imm
	case isa.ORI:
		g[a] = g[b] | imm
	case isa.XORI:
		g[a] = g[b] ^ imm
	case isa.SHLI:
		g[a] = g[b] << (imm & 63)
	case isa.SHRI:
		g[a] = g[b] >> (imm & 63)
	case isa.SARI:
		g[a] = uint64(int64(g[b]) >> (imm & 63))

	case isa.LEA1:
		g[a] = g[b] + g[c] + imm
	case isa.LEA8:
		g[a] = g[b] + g[c]*8 + imm

	case isa.LDB, isa.LDH, isa.LDW, isa.LDQ, isa.LDSB, isa.LDSH, isa.LDSW:
		addr := g[b] + imm
		size := isa.MemSize(ins.Op)
		if m.Hooks.OnMemRead != nil {
			m.Hooks.OnMemRead(t, addr, size)
		}
		var buf [8]byte
		if err := as.Read(addr, buf[:size]); err != nil {
			return m.handleFault(t, err), false
		}
		v := leBytes(buf[:size])
		switch ins.Op {
		case isa.LDSB:
			v = uint64(int64(int8(v)))
		case isa.LDSH:
			v = uint64(int64(int16(v)))
		case isa.LDSW:
			v = uint64(int64(int32(v)))
		}
		g[a] = v

	case isa.STB, isa.STH, isa.STW, isa.STQ:
		addr := g[b] + imm
		size := isa.MemSize(ins.Op)
		if m.Hooks.OnMemWrite != nil {
			m.Hooks.OnMemWrite(t, addr, size)
		}
		var buf [8]byte
		putBytes(buf[:], g[a])
		if err := as.Write(addr, buf[:size]); err != nil {
			return m.handleFault(t, err), false
		}

	case isa.CMP, isa.CMPI:
		rhs := g[c]
		if ins.Op == isa.CMPI {
			rhs = imm
		}
		r.Flags = subFlags(g[b], rhs)
	case isa.TEST, isa.TESTI:
		rhs := g[c]
		if ins.Op == isa.TESTI {
			rhs = imm
		}
		r.Flags = logicFlags(g[b] & rhs)

	case isa.JMP, isa.JZ, isa.JNZ, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.JB, isa.JBE, isa.JA, isa.JAE, isa.JS, isa.JNS:
		taken := condTaken(ins.Op, r.Flags)
		target := ins.BranchTarget(pc)
		if m.Hooks.OnBranch != nil {
			m.Hooks.OnBranch(t, pc, target, taken)
		}
		if taken {
			next = target
		}
	case isa.JMPR:
		next = g[b]
		if m.Hooks.OnBranch != nil {
			m.Hooks.OnBranch(t, pc, next, true)
		}
	case isa.JMPM:
		slot := ins.BranchTarget(pc)
		if m.Hooks.OnMemRead != nil {
			m.Hooks.OnMemRead(t, slot, 8)
		}
		v, err := as.ReadU64(slot)
		if err != nil {
			return m.handleFault(t, err), false
		}
		if m.Hooks.OnBranch != nil {
			m.Hooks.OnBranch(t, pc, v, true)
		}
		next = v
	case isa.CALL, isa.CALLR:
		target := ins.BranchTarget(pc)
		if ins.Op == isa.CALLR {
			target = g[b]
		}
		if m.Hooks.OnMemWrite != nil {
			m.Hooks.OnMemWrite(t, g[isa.RSP]-8, 8)
		}
		g[isa.RSP] -= 8
		if err := as.WriteU64(g[isa.RSP], next); err != nil {
			g[isa.RSP] += 8
			return m.handleFault(t, err), false
		}
		if m.Hooks.OnBranch != nil {
			m.Hooks.OnBranch(t, pc, target, true)
		}
		next = target
	case isa.RET:
		if m.Hooks.OnMemRead != nil {
			m.Hooks.OnMemRead(t, g[isa.RSP], 8)
		}
		v, err := as.ReadU64(g[isa.RSP])
		if err != nil {
			return m.handleFault(t, err), false
		}
		g[isa.RSP] += 8
		if m.Hooks.OnBranch != nil {
			m.Hooks.OnBranch(t, pc, v, true)
		}
		next = v

	case isa.PUSH, isa.PUSHF:
		v := g[a]
		if ins.Op == isa.PUSHF {
			v = r.Flags
		}
		if m.Hooks.OnMemWrite != nil {
			m.Hooks.OnMemWrite(t, g[isa.RSP]-8, 8)
		}
		g[isa.RSP] -= 8
		if err := as.WriteU64(g[isa.RSP], v); err != nil {
			g[isa.RSP] += 8
			return m.handleFault(t, err), false
		}
	case isa.POP, isa.POPF:
		if m.Hooks.OnMemRead != nil {
			m.Hooks.OnMemRead(t, g[isa.RSP], 8)
		}
		v, err := as.ReadU64(g[isa.RSP])
		if err != nil {
			return m.handleFault(t, err), false
		}
		g[isa.RSP] += 8
		if ins.Op == isa.POPF {
			r.Flags = v & isa.FlagMask
		} else {
			g[a] = v
		}

	case isa.SYSCALL:
		var exit int
		var status int
		yielded, exit, status = m.doSyscall(t)
		if exit != 0 {
			// Retire the syscall instruction, then end the thread/process.
			t.Regs.PC = next
			t.Retired++
			m.GlobalRetired++
			if exit == exitThreadAction {
				m.exitThread(t, status)
			} else {
				m.exitGroup(status)
			}
			return true, true
		}

	case isa.CPUID:
		g[a] = 0x50564d31 // "PVM1" feature word
		if m.Hooks.OnMarker != nil {
			m.Hooks.OnMarker(t, ins.Op, uint32(ins.Imm))
		}
	case isa.SSCMARK, isa.MAGIC:
		if m.Hooks.OnMarker != nil {
			m.Hooks.OnMarker(t, ins.Op, uint32(ins.Imm))
		}
	case isa.RDTSC:
		g[a] = m.Kernel.Clock.Now(m.GlobalRetired)

	case isa.XCHG, isa.XADD, isa.CMPXCHG:
		addr := g[b] + imm
		if m.Hooks.OnMemRead != nil {
			m.Hooks.OnMemRead(t, addr, 8)
		}
		if m.Hooks.OnMemWrite != nil {
			m.Hooks.OnMemWrite(t, addr, 8)
		}
		old, err := as.ReadU64(addr)
		if err != nil {
			return m.handleFault(t, err), false
		}
		switch ins.Op {
		case isa.XCHG:
			if err := as.WriteU64(addr, g[a]); err != nil {
				return m.handleFault(t, err), false
			}
			g[a] = old
		case isa.XADD:
			if err := as.WriteU64(addr, old+g[a]); err != nil {
				return m.handleFault(t, err), false
			}
			g[a] = old
		case isa.CMPXCHG:
			if old == g[isa.R0] {
				if err := as.WriteU64(addr, g[a]); err != nil {
					return m.handleFault(t, err), false
				}
				r.Flags = isa.FlagZ
			} else {
				g[isa.R0] = old
				r.Flags = 0
			}
		}

	case isa.WRFSBASE:
		r.FSBase = g[a]
	case isa.RDFSBASE:
		g[a] = r.FSBase
	case isa.WRGSBASE:
		r.GSBase = g[a]
	case isa.RDGSBASE:
		g[a] = r.GSBase

	case isa.XSAVE:
		area := isa.XSave(r)
		if m.Hooks.OnMemWrite != nil {
			m.Hooks.OnMemWrite(t, g[a], len(area))
		}
		if err := as.Write(g[a], area); err != nil {
			return m.handleFault(t, err), false
		}
	case isa.XRSTOR:
		if m.Hooks.OnMemRead != nil {
			m.Hooks.OnMemRead(t, g[a], isa.XSaveSize)
		}
		area := make([]byte, isa.XSaveSize)
		if err := as.Read(g[a], area); err != nil {
			return m.handleFault(t, err), false
		}
		isa.XRstor(r, area)

	case isa.VLD:
		addr := g[b] + imm
		if m.Hooks.OnMemRead != nil {
			m.Hooks.OnMemRead(t, addr, 16)
		}
		var buf [16]byte
		if err := as.Read(addr, buf[:]); err != nil {
			return m.handleFault(t, err), false
		}
		r.V[ins.A&7][0] = leBytes(buf[:8])
		r.V[ins.A&7][1] = leBytes(buf[8:])
	case isa.VST:
		addr := g[b] + imm
		if m.Hooks.OnMemWrite != nil {
			m.Hooks.OnMemWrite(t, addr, 16)
		}
		var buf [16]byte
		putBytes(buf[:8], r.V[ins.A&7][0])
		putBytes(buf[8:], r.V[ins.A&7][1])
		if err := as.Write(addr, buf[:]); err != nil {
			return m.handleFault(t, err), false
		}
	case isa.VADDQ:
		r.V[ins.A&7][0] = r.V[ins.B&7][0] + r.V[ins.C&7][0]
		r.V[ins.A&7][1] = r.V[ins.B&7][1] + r.V[ins.C&7][1]
	case isa.VMULQ:
		r.V[ins.A&7][0] = r.V[ins.B&7][0] * r.V[ins.C&7][0]
		r.V[ins.A&7][1] = r.V[ins.B&7][1] * r.V[ins.C&7][1]
	case isa.VXOR:
		r.V[ins.A&7][0] = r.V[ins.B&7][0] ^ r.V[ins.C&7][0]
		r.V[ins.A&7][1] = r.V[ins.B&7][1] ^ r.V[ins.C&7][1]
	case isa.VMOVQ:
		r.V[ins.A&7] = [2]uint64{g[b], 0}
	case isa.MOVQV:
		g[a] = r.V[ins.B&7][0]
	}

	t.Regs.PC = next
	t.Retired++
	m.GlobalRetired++

	if m.checkPerfOverflow(t) {
		return true, true
	}
	return yielded, true
}

// checkPerfOverflow fires any due perf counters (the graceful-exit
// mechanism). It returns true when an overflow exited the thread. The block
// executor bounds its batches so this check still fires at the exact
// overflow instruction (see blockBudget).
func (m *Machine) checkPerfOverflow(t *Thread) bool {
	for _, p := range t.perf {
		if !p.Fired && t.Retired-p.base >= p.Period {
			p.Fired = true
			if p.ExitOnOverflow {
				m.exitThread(t, 0)
				return true
			}
			t.Regs.PC = p.Handler
		}
	}
	return false
}

// Exit kinds returned by doSyscall.
const (
	noExitAction = iota
	exitThreadAction
	exitGroupAction
)

// doSyscall handles a SYSCALL instruction. exit reports whether the call
// ends the thread (exitThreadAction) or the process (exitGroupAction); the
// caller retires the instruction before applying the exit.
func (m *Machine) doSyscall(t *Thread) (yielded bool, exit, status int) {
	num := t.Regs.GPR[isa.R0]
	var res kernel.Result
	handled := false
	if m.Hooks.SyscallFilter != nil {
		res, handled = m.Hooks.SyscallFilter(t, num)
	}
	if !handled {
		res = m.Kernel.Syscall(&kernel.Ctx{
			Proc: m.Proc, Regs: &t.Regs, TID: t.TID, Icount: m.GlobalRetired,
		})
	}

	switch res.Action {
	case kernel.ActClone:
		child := m.AddThread(t.Regs)
		child.Regs.GPR[isa.R0] = 0
		child.Regs.GPR[isa.RSP] = res.CloneSP
		child.Regs.PC = res.CloneEntry
		res.Ret = uint64(child.TID)
	case kernel.ActExitThread:
		exit, status = exitThreadAction, res.ExitStatus
	case kernel.ActExitGroup:
		exit, status = exitGroupAction, res.ExitStatus
	case kernel.ActPerfOpen:
		t.perf = append(t.perf, &PerfCounter{
			Period:         res.Perf.Period,
			Handler:        res.Perf.Handler,
			ExitOnOverflow: res.Perf.Flags&kernel.PerfExitOnOverflow != 0,
			base:           t.Retired + 1, // counting starts after this call
		})
	case kernel.ActYield:
		yielded = true
	}

	t.Regs.GPR[isa.R0] = res.Ret
	if m.Hooks.OnSyscall != nil {
		m.Hooks.OnSyscall(t, num, res)
	}
	return yielded, exit, status
}

// handleFault gives the fault hook a chance to fix the fault (page
// injection); otherwise the process dies. Returns yielded=true when the
// thread can no longer run.
func (m *Machine) handleFault(t *Thread, err error) bool {
	f, ok := err.(*mem.Fault)
	if !ok {
		f = &mem.Fault{}
	}
	if m.Hooks.OnFault != nil && m.Hooks.OnFault(t, f) {
		return false // retry the instruction
	}
	m.fatalFault(t, f)
	return true
}

// PerfCounters returns the counters armed on a thread.
func (t *Thread) PerfCounters() []*PerfCounter { return t.perf }

func subFlags(lhs, rhs uint64) uint64 {
	res := lhs - rhs
	var f uint64
	if res == 0 {
		f |= isa.FlagZ
	}
	if int64(res) < 0 {
		f |= isa.FlagS
	}
	if lhs < rhs {
		f |= isa.FlagC
	}
	if (lhs^rhs)&(lhs^res)>>63 != 0 {
		f |= isa.FlagO
	}
	return f
}

func logicFlags(res uint64) uint64 {
	var f uint64
	if res == 0 {
		f |= isa.FlagZ
	}
	if int64(res) < 0 {
		f |= isa.FlagS
	}
	return f
}

func condTaken(op isa.Op, flags uint64) bool {
	z := flags&isa.FlagZ != 0
	s := flags&isa.FlagS != 0
	c := flags&isa.FlagC != 0
	o := flags&isa.FlagO != 0
	switch op {
	case isa.JMP:
		return true
	case isa.JZ:
		return z
	case isa.JNZ:
		return !z
	case isa.JL:
		return s != o
	case isa.JLE:
		return z || s != o
	case isa.JG:
		return !z && s == o
	case isa.JGE:
		return s == o
	case isa.JB:
		return c
	case isa.JBE:
		return c || z
	case isa.JA:
		return !c && !z
	case isa.JAE:
		return !c
	case isa.JS:
		return s
	case isa.JNS:
		return !s
	}
	return false
}

func leBytes(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putBytes(b []byte, v uint64) {
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
}
