package vm

import (
	"testing"

	"elfie/internal/fault"
	"elfie/internal/mem"
)

const spinProgram = `
		.text
		.global _start
_start:
		movi r1, 0
loop:
		addi r1, r1, 1
		cmpi r1, 100000
		jnz  loop
		movi r0, 231
		movi r1, 0
		syscall
`

func TestVMUngracefulExitInjection(t *testing.T) {
	m := load(t, spinProgram, 1)
	m.FaultInj = fault.New(&fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Point: fault.UngracefulExit, AtRetired: 500},
	}})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.FatalFault == nil {
		t.Fatal("no fatal fault recorded")
	}
	if m.ExitStatus != 139 {
		t.Errorf("exit status = %d, want 139 (SIGSEGV)", m.ExitStatus)
	}
	// The fault fired at (not long after) the requested threshold.
	if m.GlobalRetired < 500 || m.GlobalRetired > 600 {
		t.Errorf("died at retired=%d, want ~500", m.GlobalRetired)
	}
	if m.FaultInj.InjectedCount(fault.UngracefulExit) != 1 {
		t.Errorf("events: %v", m.FaultInj.Events())
	}
}

func TestVMPageFaultRecoverable(t *testing.T) {
	m := load(t, spinProgram, 1)
	m.FaultInj = fault.New(&fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Point: fault.PageFault, AtRetired: 500},
	}})
	recovered := 0
	m.Hooks.OnFault = func(th *Thread, f *mem.Fault) bool {
		recovered++
		return true // pretend we injected the missing page
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if recovered != 1 {
		t.Errorf("OnFault fired %d times, want 1", recovered)
	}
	// The program recovered and ran to its normal exit.
	if m.FatalFault != nil || m.ExitStatus != 0 {
		t.Errorf("fault=%v exit=%d", m.FatalFault, m.ExitStatus)
	}
}

func TestVMPageFaultUnhandledIsFatal(t *testing.T) {
	m := load(t, spinProgram, 1)
	m.FaultInj = fault.New(&fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Point: fault.PageFault, AtRetired: 500},
	}})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.FatalFault == nil {
		t.Error("unhandled injected page fault did not kill the process")
	}
}
