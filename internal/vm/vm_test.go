package vm

import (
	"strings"
	"testing"

	"elfie/internal/asm"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/mem"
)

// run assembles src, loads it into a fresh machine, runs it, and returns
// the machine.
func run(t *testing.T, src string, seed int64) *Machine {
	t.Helper()
	m := load(t, src, seed)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func load(t *testing.T, src string, seed int64) *Machine {
	t.Helper()
	exe, err := asm.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.NewFS(), seed)
	m, err := NewLoaded(k, exe, []string{"prog"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 10_000_000
	return m
}

const exitSnippet = `
		movi r0, 231     # exit_group (status = r1)
		syscall
`

func TestHelloWorld(t *testing.T) {
	m := run(t, `
		.text
		.global _start
_start:
		movi r0, 1       # write
		movi r1, 1       # stdout
		limm r2, msg
		movi r3, 14
		syscall
		movi r0, 231
		movi r1, 42
		syscall
		.data
msg:	.ascii "hello, world!\n"
	`, 1)
	if got := string(m.Stdout()); got != "hello, world!\n" {
		t.Errorf("stdout = %q", got)
	}
	if !m.Halted || m.ExitStatus != 42 {
		t.Errorf("halted=%v exit=%d", m.Halted, m.ExitStatus)
	}
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..100 into r2, store to memory, print nothing, exit with code 0.
	m := run(t, `
		.text
		.global _start
_start:
		movi r1, 0       # i
		movi r2, 0       # sum
loop:
		addi r1, r1, 1
		add  r2, r2, r1
		cmpi r1, 100
		jnz  loop
		limm r4, result
		st.q r2, [r4]
`+exitSnippet+`
		.data
result:	.quad 0
	`, 1)
	// Locate "result" through the machine's loaded image: sum must be 5050.
	// The .data section is mapped; scan for the value.
	found := false
	for _, r := range m.Proc.AS.Regions() {
		buf := make([]byte, r.Size)
		m.Proc.AS.ReadNoFault(r.Addr, buf)
		for off := 0; off+8 <= len(buf); off += 8 {
			v := uint64(buf[off]) | uint64(buf[off+1])<<8 | uint64(buf[off+2])<<16 |
				uint64(buf[off+3])<<24 | uint64(buf[off+4])<<32
			if v == 5050 {
				found = true
			}
		}
	}
	if !found {
		t.Error("sum 5050 not stored")
	}
}

func TestSignedBranches(t *testing.T) {
	m := run(t, `
		.text
		.global _start
_start:
		movi r1, -5
		movi r2, 3
		cmp  r1, r2
		jl   less        # signed: -5 < 3
		movi r5, 0
		jmp  done
less:
		movi r5, 1
done:
		cmp  r1, r2      # unsigned: 0xfff..b > 3
		ja   above
		movi r6, 0
		jmp  out
above:
		movi r6, 1
out:
		mov  r1, r5
		shli r1, r1, 1
		or   r1, r1, r6
		movi r0, 231
		syscall
	`, 1)
	if m.ExitStatus != 3 {
		t.Errorf("exit = %d, want 3 (jl and ja both taken)", m.ExitStatus)
	}
}

func TestCallRetStack(t *testing.T) {
	m := run(t, `
		.text
		.global _start
_start:
		movi r1, 7
		call double
		call double
		mov  r1, r0
		movi r0, 231
		syscall
double:
		add  r0, r1, r1
		mov  r1, r0
		ret
	`, 1)
	if m.ExitStatus != 28 {
		t.Errorf("exit = %d, want 28", m.ExitStatus)
	}
}

func TestMultiThreadClone(t *testing.T) {
	// Main thread clones a worker that atomically adds 100 to a counter,
	// then spins until the worker signals completion.
	m := run(t, `
		.text
		.global _start
_start:
		movi r0, 56           # clone
		movi r1, 0
		limm r2, childstack+4096
		limm r3, worker
		syscall
wait:
		limm r4, flag
		ld.q r5, [r4]
		cmpi r5, 1
		jz   joined
		pause
		jmp  wait
joined:
		limm r4, counter
		ld.q r1, [r4]
`+exitSnippet+`
worker:
		limm r4, counter
		movi r5, 100
		xadd r5, [r4]
		limm r4, flag
		movi r5, 1
		st.q r5, [r4]
		movi r0, 60           # exit (thread)
		movi r1, 0
		syscall
		.data
counter: .quad 11
flag:    .quad 0
		.bss
childstack: .space 4096
	`, 1)
	if m.ExitStatus != 111 {
		t.Errorf("exit = %d, want 111", m.ExitStatus)
	}
	if len(m.Threads) != 2 {
		t.Errorf("threads = %d", len(m.Threads))
	}
	if m.Threads[1].Alive {
		t.Error("worker still alive")
	}
}

func TestUngracefulFault(t *testing.T) {
	m := run(t, `
		.text
		.global _start
_start:
		limm r1, 0xdead0000
		ld.q r2, [r1]
	`, 1)
	if m.FatalFault == nil || m.FatalFault.Addr != 0xdead0000 {
		t.Fatalf("fault = %+v", m.FatalFault)
	}
	if m.ExitStatus != 139 {
		t.Errorf("exit = %d", m.ExitStatus)
	}
	if m.Threads[0].Fault == nil {
		t.Error("thread fault not recorded")
	}
}

func TestFaultHookInjection(t *testing.T) {
	m := load(t, `
		.text
		.global _start
_start:
		limm r1, 0x77770000
		ld.q r2, [r1]
		mov  r1, r2
		movi r0, 231
		syscall
	`, 1)
	injected := 0
	m.Hooks.OnFault = func(th *Thread, f *mem.Fault) bool {
		if !f.Missing {
			return false
		}
		injected++
		m.Proc.AS.Map(mem.PageBase(f.Addr), mem.PageSize, mem.ProtRW)
		m.Proc.AS.WriteU64(f.Addr, 64)
		return true
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if injected != 1 || m.ExitStatus != 64 || m.FatalFault != nil {
		t.Errorf("injected=%d exit=%d fault=%v", injected, m.ExitStatus, m.FatalFault)
	}
}

func TestSyscallFilterInjection(t *testing.T) {
	// Replay-style injection: gettimeofday is skipped; r0 forced to 77.
	m := load(t, `
		.text
		.global _start
_start:
		movi r0, 96
		movi r1, 0        # NULL tv: would fault if executed natively
		syscall
		mov  r1, r0
		movi r0, 231
		syscall
	`, 1)
	m.Hooks.SyscallFilter = func(th *Thread, num uint64) (kernel.Result, bool) {
		if num == kernel.SysGettimeofday {
			return kernel.Result{Ret: 77}, true
		}
		return kernel.Result{}, false
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitStatus != 77 {
		t.Errorf("exit = %d", m.ExitStatus)
	}
}

func TestPerfCounterExit(t *testing.T) {
	// Arm a 1000-instruction counter, then loop forever: the perf overflow
	// must exit the thread — the paper's graceful-exit mechanism.
	m := run(t, `
		.text
		.global _start
_start:
		movi r0, 298
		limm r1, attr
		syscall
spin:
		addi r2, r2, 1
		jmp  spin
		.data
attr:
		.quad 1000       # period
		.quad 0          # handler
		.quad 1          # flags: exit on overflow
	`, 1)
	if m.FatalFault != nil {
		t.Fatalf("fault: %v", m.FatalFault)
	}
	if m.Threads[0].Alive {
		t.Fatal("thread still alive")
	}
	// Thread retired its 2 setup instructions + syscall + ~1000 more.
	got := m.Threads[0].Retired
	if got < 1000 || got > 1010 {
		t.Errorf("retired = %d", got)
	}
	pcs := m.Threads[0].PerfCounters()
	if len(pcs) != 1 || !pcs[0].Fired {
		t.Errorf("counters: %+v", pcs)
	}
}

func TestPerfCounterHandler(t *testing.T) {
	// Overflow redirects to a handler that exits with a distinct status.
	m := run(t, `
		.text
		.global _start
_start:
		movi r0, 298
		limm r1, attr
		syscall
spin:
		addi r2, r2, 1
		jmp  spin
handler:
		movi r0, 231
		movi r1, 55
		syscall
		.data
attr:
		.quad 500
		.quad handler
		.quad 0
	`, 1)
	if m.ExitStatus != 55 {
		t.Errorf("exit = %d", m.ExitStatus)
	}
}

func TestMaxInstructions(t *testing.T) {
	m := load(t, `
		.text
		.global _start
_start:	jmp _start
	`, 1)
	m.MaxInstructions = 5000
	m.Run()
	if m.GlobalRetired != 5000 {
		t.Errorf("retired = %d", m.GlobalRetired)
	}
	if m.Halted {
		t.Error("machine halted")
	}
}

func TestMarkersAndHooks(t *testing.T) {
	m := load(t, `
		.text
		.global _start
_start:
		sscmark 0x1111
		magic 7
		cpuid r3, 2
`+exitSnippet, 1)
	var markers []uint32
	var ops []isa.Op
	insCount := 0
	branches := 0
	m.Hooks.OnMarker = func(th *Thread, op isa.Op, tag uint32) {
		markers = append(markers, tag)
		ops = append(ops, op)
	}
	m.Hooks.OnIns = func(th *Thread, pc uint64, ins isa.Inst) { insCount++ }
	m.Hooks.OnBranch = func(th *Thread, pc, tgt uint64, taken bool) { branches++ }
	m.Run()
	if len(markers) != 3 || markers[0] != 0x1111 || markers[1] != 7 || markers[2] != 2 {
		t.Errorf("markers: %v (%v)", markers, ops)
	}
	if insCount != 5 {
		t.Errorf("OnIns count = %d", insCount)
	}
	// CPUID leaves a feature word.
	if m.Threads[0].Regs.GPR[isa.R3] == 0 {
		t.Error("cpuid did not write feature word")
	}
}

func TestSchedulerTrace(t *testing.T) {
	// Two threads increment a shared counter in a data race; with a
	// recorded schedule the interleaving is reproduced exactly.
	src := `
		.text
		.global _start
_start:
		movi r0, 56
		movi r1, 0
		limm r2, stack2+4096
		limm r3, worker
		syscall
		call bump
		movi r0, 60
		movi r1, 0
		syscall
worker:
		call bump
		movi r0, 60
		movi r1, 0
		syscall
bump:
		limm r4, shared
		movi r6, 0
again:
		ld.q r5, [r4]
		addi r5, r5, 1
		st.q r5, [r4]
		addi r6, r6, 1
		cmpi r6, 50
		jnz  again
		ret
		.data
shared:	.quad 0
		.bss
stack2:	.space 4096
	`
	// Run 1: record the schedule via OnIns.
	m1 := load(t, src, 3)
	m1.Sched = NewRoundRobin(7, 0, 0)
	var trace []SchedRecord
	m1.Hooks.OnIns = func(th *Thread, pc uint64, ins isa.Inst) {
		if n := len(trace); n > 0 && trace[n-1].TID == th.TID {
			trace[n-1].N++
		} else {
			trace = append(trace, SchedRecord{TID: th.TID, N: 1})
		}
	}
	m1.Run()
	final1 := m1.GlobalRetired

	// Run 2: replay the schedule with a TraceScheduler.
	m2 := load(t, src, 3)
	ts := &TraceScheduler{Trace: trace}
	m2.Sched = ts
	m2.Run()
	if m2.GlobalRetired != final1 {
		t.Errorf("retired %d != %d", m2.GlobalRetired, final1)
	}
	// Per-thread counts must match exactly.
	for i := range m1.Threads {
		if m1.Threads[i].Retired != m2.Threads[i].Retired {
			t.Errorf("t%d retired %d != %d", i, m1.Threads[i].Retired, m2.Threads[i].Retired)
		}
	}
}

func TestRoundRobinJitterVariation(t *testing.T) {
	src := `
		.text
		.global _start
_start:
		movi r0, 56
		movi r1, 0
		limm r2, stack2+4096
		limm r3, worker
		syscall
		limm r4, shared
		movi r6, 0
l1:
		movi r7, 1
		xadd r7, [r4]
		addi r6, r6, 1
		cmpi r6, 200
		jnz  l1
		movi r0, 60
		syscall
worker:
		limm r4, shared
w1:
		ld.q r5, [r4]
		cmpi r5, 150
		jae  wdone
		pause
		jmp  w1
wdone:
		movi r0, 60
		syscall
		.data
shared:	.quad 0
		.bss
stack2:	.space 4096
	`
	// Different jitter seeds give different spin iteration counts for the
	// worker — the run-to-run variation ELFies exhibit (paper Fig. 11).
	counts := map[uint64]bool{}
	for seed := int64(0); seed < 6; seed++ {
		m := load(t, src, 9)
		m.Sched = NewRoundRobin(50, 30, seed)
		m.Run()
		counts[m.Threads[1].Retired] = true
	}
	if len(counts) < 2 {
		t.Errorf("no variation across seeds: %v", counts)
	}
}

func TestHLT(t *testing.T) {
	m := run(t, `
		.text
		.global _start
_start:	hlt
	`, 1)
	if !m.Halted {
		t.Error("not halted")
	}
	if !strings.Contains(m.DumpState(), "halted=true") {
		t.Error("DumpState")
	}
}

func TestVectorAndXsaveExec(t *testing.T) {
	m := run(t, `
		.text
		.global _start
_start:
		limm r1, vals
		vld  v0, [r1]
		vld  v1, [r1+16]
		vaddq v2, v0, v1
		vst  v2, [r1+32]
		limm r2, area
		xsave r2
		vxor v2, v2, v2
		xrstor r2
		limm r1, vals
		ld.q r3, [r1+32]
		movqv r4, v2
		cmp  r3, r4
		jz   good
		movi r1, 1
		movi r0, 231
		syscall
good:
		movi r1, 0
		movi r0, 231
		syscall
		.data
		.align 16
vals:	.quad 10, 20, 30, 40
		.quad 0, 0
		.align 64
area:	.space 256
	`, 1)
	if m.ExitStatus != 0 {
		t.Errorf("exit = %d (xsave/xrstor mismatch)", m.ExitStatus)
	}
}

func TestFSGSBase(t *testing.T) {
	m := run(t, `
		.text
		.global _start
_start:
		limm r1, tls
		wrfsbase r1
		rdfsbase r2
		ld.q r3, [r2]
		mov  r1, r3
		movi r0, 231
		syscall
		.data
tls:	.quad 99
	`, 1)
	if m.ExitStatus != 99 {
		t.Errorf("exit = %d", m.ExitStatus)
	}
}

func TestThreadHooks(t *testing.T) {
	starts, exits := 0, 0
	m := load(t, `
		.text
		.global _start
_start:
`+exitSnippet, 1)
	// Thread 0 was created by NewLoaded before hooks were set; count only
	// via exit hook plus a fresh machine for the start hook.
	m.Hooks.OnThreadExit = func(th *Thread) { exits++ }
	m.Run()
	if exits != 1 {
		t.Errorf("exits = %d", exits)
	}
	_ = starts
}

func TestRoundRobinStateRoundTrip(t *testing.T) {
	m := &Machine{Threads: []*Thread{
		{TID: 0, Alive: true}, {TID: 1, Alive: true}, {TID: 2, Alive: true},
	}}
	rr := NewRoundRobin(100, 37, 5)
	// Burn an arbitrary prefix of the quantum sequence.
	for i := 0; i < 17; i++ {
		tid, n := rr.Next(m)
		rr.Ran(tid, n)
	}

	// Serialize with no in-flight quantum: the restored scheduler must
	// produce the identical (tid, quantum) sequence.
	st := rr.State(0)
	rr2 := RestoreRoundRobin(st)
	for i := 0; i < 50; i++ {
		tid1, n1 := rr.Next(m)
		tid2, n2 := rr2.Next(m)
		if tid1 != tid2 || n1 != n2 {
			t.Fatalf("step %d: (%d,%d) vs (%d,%d)", i, tid1, n1, tid2, n2)
		}
		rr.Ran(tid1, n1)
		rr2.Ran(tid2, n2)
	}

	// Serialize with an in-flight residual quantum: the restored scheduler
	// re-grants exactly (last, resid) first, then continues the rotation.
	tid, n := rr.Next(m)
	if n <= 3 {
		t.Fatalf("quantum %d too small for a residual test", n)
	}
	rr.Ran(tid, n-3) // pretend 3 instructions of the grant never ran
	st = rr.State(3)
	rr3 := RestoreRoundRobin(st)
	rtid, rn := rr3.Next(m)
	if rtid != tid || rn != 3 {
		t.Fatalf("residual grant (%d,%d), want (%d,3)", rtid, rn, tid)
	}
	rr3.Ran(rtid, rn)
	// After the residual drains, the two schedulers converge again.
	for i := 0; i < 20; i++ {
		tid1, n1 := rr.Next(m)
		tid2, n2 := rr3.Next(m)
		if tid1 != tid2 || n1 != n2 {
			t.Fatalf("post-residual step %d: (%d,%d) vs (%d,%d)", i, tid1, n1, tid2, n2)
		}
		rr.Ran(tid1, n1)
		rr3.Ran(tid2, n2)
	}

	// A dead last-thread drops the residual instead of granting it.
	st.Last, st.Resid = 1, 50
	m.Threads[1].Alive = false
	rr4 := RestoreRoundRobin(st)
	if tid, _ := rr4.Next(m); tid == 1 {
		t.Fatal("residual granted to a dead thread")
	}
}
