package vm

import (
	"math/rand"
	"testing"

	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/mem"
)

// TestInterpreterDifferential cross-checks the interpreter's ALU semantics
// against an independent Go evaluator on random straight-line programs.
func TestInterpreterDifferential(t *testing.T) {
	aluOps := []isa.Op{
		isa.MOV, isa.ADD, isa.SUB, isa.MUL, isa.UDIV, isa.SDIV, isa.UREM,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR, isa.NOT, isa.NEG,
		isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SHLI, isa.SHRI, isa.SARI, isa.LEA1, isa.LEA8, isa.MOVI,
	}

	eval := func(op isa.Op, b, c, imm uint64) (uint64, bool) {
		switch op {
		case isa.MOV:
			return b, true
		case isa.MOVI:
			return imm, true
		case isa.ADD:
			return b + c, true
		case isa.SUB:
			return b - c, true
		case isa.MUL:
			return b * c, true
		case isa.UDIV:
			if c == 0 {
				return ^uint64(0), true
			}
			return b / c, true
		case isa.SDIV:
			if c == 0 {
				return ^uint64(0), true
			}
			return uint64(int64(b) / int64(c)), true
		case isa.UREM:
			if c == 0 {
				return b, true
			}
			return b % c, true
		case isa.AND:
			return b & c, true
		case isa.OR:
			return b | c, true
		case isa.XOR:
			return b ^ c, true
		case isa.SHL:
			return b << (c & 63), true
		case isa.SHR:
			return b >> (c & 63), true
		case isa.SAR:
			return uint64(int64(b) >> (c & 63)), true
		case isa.NOT:
			return ^b, true
		case isa.NEG:
			return -b, true
		case isa.ADDI:
			return b + imm, true
		case isa.MULI:
			return b * imm, true
		case isa.ANDI:
			return b & imm, true
		case isa.ORI:
			return b | imm, true
		case isa.XORI:
			return b ^ imm, true
		case isa.SHLI:
			return b << (imm & 63), true
		case isa.SHRI:
			return b >> (imm & 63), true
		case isa.SARI:
			return uint64(int64(b) >> (imm & 63)), true
		case isa.LEA1:
			return b + c + imm, true
		case isa.LEA8:
			return b + c*8 + imm, true
		}
		return 0, false
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		// Random register state and random straight-line program.
		var init [14]uint64 // use r0..r13 (leave rbp/rsp alone)
		for i := range init {
			init[i] = rng.Uint64()
		}
		ref := init
		var code []byte
		n := 5 + rng.Intn(60)
		type step struct {
			op      isa.Op
			a, b, c uint8
			imm     int32
		}
		var steps []step
		for i := 0; i < n; i++ {
			s := step{
				op:  aluOps[rng.Intn(len(aluOps))],
				a:   uint8(rng.Intn(14)),
				b:   uint8(rng.Intn(14)),
				c:   uint8(rng.Intn(14)),
				imm: int32(rng.Uint32()),
			}
			steps = append(steps, s)
			code = isa.Inst{Op: s.op, A: s.a, B: s.b, C: s.c, Imm: s.imm}.Encode(code)
		}
		code = isa.Inst{Op: isa.HLT}.Encode(code)

		// Reference evaluation.
		for _, s := range steps {
			v, ok := eval(s.op, ref[s.b], ref[s.c], uint64(int64(s.imm)))
			if !ok {
				t.Fatalf("unhandled op %v", s.op)
			}
			ref[s.a] = v
		}

		// Machine evaluation: map the code and run.
		k := kernel.New(kernel.NewFS(), 1)
		proc := kernel.NewProcess(k.FS)
		proc.AS.Map(0x1000, uint64(len(code)+mem.PageSize), mem.ProtRX)
		proc.AS.WriteNoFault(0x1000, code)
		m := New(k, proc)
		th := m.AddThread(isa.RegFile{PC: 0x1000})
		for i := 0; i < 14; i++ {
			th.Regs.GPR[i] = init[i]
		}
		m.MaxInstructions = uint64(n + 10)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 14; i++ {
			if th.Regs.GPR[i] != ref[i] {
				t.Fatalf("trial %d: r%d = %#x, reference %#x\nprogram:\n%v",
					trial, i, th.Regs.GPR[i], ref[i], steps)
			}
		}
	}
}
