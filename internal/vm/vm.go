// Package vm implements the PVM-64 functional emulator: a multi-threaded
// machine with a pluggable scheduler, hardware-style per-thread performance
// counters, and instrumentation hooks.
//
// The hooks are the substrate for package pin (the Pin-like instrumentation
// framework); the scheduler abstraction is what lets the PinPlay replayer
// enforce the recorded thread interleaving while native ELFie runs get a
// seeded, jittering round-robin that models run-to-run variation.
package vm

import (
	"fmt"
	"sync/atomic"

	"elfie/internal/elfobj"
	"elfie/internal/fault"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/mem"
)

// Thread is one hardware thread of the machine.
type Thread struct {
	TID        int
	Regs       isa.RegFile
	Alive      bool
	ExitStatus int
	// Retired counts instructions this thread has retired.
	Retired uint64
	// Fault is set if the thread died on an unhandled memory fault
	// (the "ungraceful exit" of a divergent ELFie).
	Fault *mem.Fault
	// perf counters armed on this thread via perf_event_open.
	perf []*PerfCounter
}

// PerfCounter models one hardware performance counter counting retired
// instructions, with an overflow action — the mechanism pinball2elf uses
// for the graceful-exit challenge.
type PerfCounter struct {
	Period         uint64
	Handler        uint64
	ExitOnOverflow bool
	Fired          bool
	base           uint64 // thread Retired when armed
}

// Count returns the counter's current value for a thread.
func (p *PerfCounter) Count(t *Thread) uint64 { return t.Retired - p.base }

// PerfCounterState is the serializable form of an armed PerfCounter: the
// counter's configuration plus its current count relative to the thread.
// Storing the count (not the raw base) lets a checkpoint restore counters
// on a machine whose per-thread Retired totals restart at zero.
type PerfCounterState struct {
	Period         uint64 `json:"period"`
	Handler        uint64 `json:"handler,omitempty"`
	ExitOnOverflow bool   `json:"exit_on_overflow,omitempty"`
	Fired          bool   `json:"fired,omitempty"`
	Count          uint64 `json:"count"`
}

// PerfState snapshots every counter armed on the thread.
func (t *Thread) PerfState() []PerfCounterState {
	if len(t.perf) == 0 {
		return nil
	}
	out := make([]PerfCounterState, len(t.perf))
	for i, p := range t.perf {
		out[i] = PerfCounterState{
			Period:         p.Period,
			Handler:        p.Handler,
			ExitOnOverflow: p.ExitOnOverflow,
			Fired:          p.Fired,
			Count:          p.Count(t),
		}
	}
	return out
}

// RestorePerf re-arms counters from a snapshot, preserving each counter's
// logical count against the thread's current Retired total. The base
// subtraction wraps correctly even when the restored Retired is smaller
// than the count (uint64 modular arithmetic).
func (t *Thread) RestorePerf(states []PerfCounterState) {
	t.perf = t.perf[:0]
	for _, st := range states {
		t.perf = append(t.perf, &PerfCounter{
			Period:         st.Period,
			Handler:        st.Handler,
			ExitOnOverflow: st.ExitOnOverflow,
			Fired:          st.Fired,
			base:           t.Retired - st.Count,
		})
	}
}

// Hooks are instrumentation callbacks. Any nil hook is skipped. Hooks fire
// before the architectural effect they describe.
type Hooks struct {
	// OnIns fires before each instruction executes.
	OnIns func(t *Thread, pc uint64, ins isa.Inst)
	// OnMemRead/OnMemWrite fire before a data memory access.
	OnMemRead  func(t *Thread, addr uint64, size int)
	OnMemWrite func(t *Thread, addr uint64, size int)
	// OnBranch fires after a control-flow instruction resolves.
	OnBranch func(t *Thread, pc, target uint64, taken bool)
	// OnMarker fires for CPUID/SSCMARK/MAGIC marker instructions.
	OnMarker func(t *Thread, op isa.Op, tag uint32)
	// SyscallFilter, when non-nil, may handle a system call entirely
	// (returning handled=true) — the replayer's side-effect injection.
	SyscallFilter func(t *Thread, num uint64) (res kernel.Result, handled bool)
	// SyscallFast, when set alongside SyscallFilter, may retire a
	// side-effect-free system call inline on the block fast path: a
	// pure-return injection (ok=true) commits ret to R0 without the full
	// state spill or kernel round-trip. It is called with hot state
	// unspilled — t.Regs.PC and the retired counters are stale — so an
	// implementation must only consult the thread identity and its own
	// log cursor, never t.Regs, and must decline (ok=false) anything with
	// memory/segment effects; declined calls re-execute via SyscallFilter
	// with fully spilled state.
	SyscallFast func(t *Thread, num uint64) (ret uint64, ok bool)
	// OnSyscall fires after a system call (native or injected) completes.
	OnSyscall func(t *Thread, num uint64, res kernel.Result)
	// OnFault may handle a memory fault (e.g. by injecting a logged page);
	// returning true retries the faulting instruction.
	OnFault func(t *Thread, f *mem.Fault) bool
	// OnThreadStart/OnThreadExit bracket a thread's life.
	OnThreadStart func(t *Thread)
	OnThreadExit  func(t *Thread)
}

// Scheduler picks the next thread to run and learns how far it got.
type Scheduler interface {
	// Next returns the TID to run and its quantum in instructions.
	// It is only called with at least one runnable thread.
	Next(m *Machine) (tid, quantum int)
	// Ran reports how many instructions the chosen thread executed
	// (possibly fewer than the quantum).
	Ran(tid, n int)
}

// RoundRobin is the default scheduler: rotate over runnable threads with a
// fixed quantum plus optional seeded jitter. Jitter models the OS-level
// run-to-run variation that makes multi-threaded ELFie runs non-
// deterministic; the PinPlay logger runs with Jitter = 0.
//
// The jitter stream comes from a splitmix64 generator whose whole state is
// one uint64, so a mid-run checkpoint can serialize the scheduler exactly
// (see RRState) and a resumed run draws the identical quantum sequence an
// uninterrupted run would have drawn.
type RoundRobin struct {
	Quantum int
	Jitter  int
	rng     uint64 // splitmix64 state
	last    int
	// resid is a quantum remainder owed to last before normal rotation
	// resumes: a checkpoint taken mid-quantum records how much of the
	// granted quantum was still unexecuted, and the restored scheduler
	// grants exactly that first.
	resid int
}

// NewRoundRobin returns a round-robin scheduler. If jitter > 0, quanta vary
// uniformly in [quantum-jitter, quantum+jitter], driven by seed.
func NewRoundRobin(quantum, jitter int, seed int64) *RoundRobin {
	return &RoundRobin{Quantum: quantum, Jitter: jitter, rng: uint64(seed)}
}

// next advances the splitmix64 state and returns the next raw draw.
func (rr *RoundRobin) next() uint64 {
	rr.rng += 0x9e3779b97f4a7c15
	z := rr.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Next implements Scheduler.
func (rr *RoundRobin) Next(m *Machine) (int, int) {
	n := len(m.Threads)
	if rr.resid > 0 && rr.last < n && m.Threads[rr.last].Alive {
		return rr.last, rr.resid
	}
	rr.resid = 0
	for i := 1; i <= n; i++ {
		tid := (rr.last + i) % n
		if m.Threads[tid].Alive {
			rr.last = tid
			q := rr.Quantum
			if rr.Jitter > 0 {
				q += int(rr.next()%uint64(2*rr.Jitter+1)) - rr.Jitter
				if q < 1 {
					q = 1
				}
			}
			return tid, q
		}
	}
	return -1, 0
}

// Ran implements Scheduler.
func (rr *RoundRobin) Ran(tid, n int) { rr.resid = 0 }

// RRState is the serializable state of a RoundRobin scheduler, captured by
// mid-run checkpoints so a resumed run continues the identical quantum
// sequence.
type RRState struct {
	Quantum int    `json:"quantum"`
	Jitter  int    `json:"jitter"`
	Rng     uint64 `json:"rng"`
	Last    int    `json:"last"`
	// Resid is the unexecuted remainder of the quantum that was in flight
	// when the checkpoint was taken (0 = checkpoint fell on a quantum
	// boundary).
	Resid int `json:"resid,omitempty"`
}

// State snapshots the scheduler. The caller supplies the in-flight quantum
// remainder (see Machine.PendingQuantum), which the scheduler itself cannot
// observe.
func (rr *RoundRobin) State(resid int) RRState {
	return RRState{Quantum: rr.Quantum, Jitter: rr.Jitter, Rng: rr.rng, Last: rr.last, Resid: resid}
}

// RestoreRoundRobin rebuilds a scheduler from a checkpointed state.
func RestoreRoundRobin(st RRState) *RoundRobin {
	return &RoundRobin{Quantum: st.Quantum, Jitter: st.Jitter, rng: st.Rng, last: st.Last, resid: st.Resid}
}

// SchedRecord is one run of instructions by one thread, as recorded by the
// PinPlay logger and enforced by the replayer.
type SchedRecord struct {
	TID int
	N   uint64
}

// TraceScheduler replays a recorded schedule exactly, then falls back to
// round-robin when the trace is exhausted.
type TraceScheduler struct {
	Trace    []SchedRecord
	pos      int
	consumed uint64
	Fallback Scheduler
}

// Next implements Scheduler.
func (ts *TraceScheduler) Next(m *Machine) (int, int) {
	for ts.pos < len(ts.Trace) {
		rec := ts.Trace[ts.pos]
		remaining := rec.N - ts.consumed
		if remaining == 0 {
			ts.pos++
			ts.consumed = 0
			continue
		}
		if rec.TID < len(m.Threads) && m.Threads[rec.TID].Alive {
			q := remaining
			if q > 1<<20 {
				q = 1 << 20
			}
			return rec.TID, int(q)
		}
		// Recorded thread is gone; skip the record.
		ts.pos++
		ts.consumed = 0
	}
	if ts.Fallback == nil {
		ts.Fallback = NewRoundRobin(100, 0, 0)
	}
	return ts.Fallback.Next(m)
}

// Ran implements Scheduler.
func (ts *TraceScheduler) Ran(tid, n int) {
	if ts.pos < len(ts.Trace) && ts.Trace[ts.pos].TID == tid {
		ts.consumed += uint64(n)
		if ts.consumed >= ts.Trace[ts.pos].N {
			ts.pos++
			ts.consumed = 0
		}
	}
}

// Exhausted reports whether the recorded schedule has been fully consumed.
func (ts *TraceScheduler) Exhausted() bool { return ts.pos >= len(ts.Trace) }

// Remaining returns the unconsumed tail of the trace, with the in-flight
// record reduced by what already ran — the schedule a mid-run checkpoint
// stores so constrained replay resumes at the exact interleaving point.
func (ts *TraceScheduler) Remaining() []SchedRecord {
	if ts.pos >= len(ts.Trace) {
		return nil
	}
	var out []SchedRecord
	first := ts.Trace[ts.pos]
	first.N -= ts.consumed
	if first.N > 0 {
		out = append(out, first)
	}
	return append(out, ts.Trace[ts.pos+1:]...)
}

// Machine is one emulated PVM computer running a single process.
type Machine struct {
	Kernel  *kernel.Kernel
	Proc    *kernel.Process
	Threads []*Thread
	Sched   Scheduler
	Hooks   Hooks

	// GlobalRetired counts instructions retired machine-wide.
	GlobalRetired uint64
	// MaxInstructions stops the run when GlobalRetired reaches it (0 = off).
	MaxInstructions uint64
	// PauseDoesNotYield makes PAUSE a pure timing hint instead of a
	// scheduler yield. The default (yielding) models timeslicing on few
	// CPUs; simulators of many-core machines where each thread owns a core
	// set it, so active-wait spin loops burn instructions at full rate, as
	// they do on hardware.
	PauseDoesNotYield bool

	// FaultInj, when non-nil, raises synthetic machine faults — forced page
	// faults and ungraceful exits — at the retired-instruction thresholds
	// its plan specifies.
	FaultInj *fault.Injector

	// DisableBlockCache forces the per-instruction interpreter even when no
	// instrumentation hooks are installed. Benchmarks use it as the baseline;
	// it is also an escape hatch when debugging the fast path.
	DisableBlockCache bool
	// DisableChaining keeps the block cache but turns off block-to-block
	// chaining and superblock formation: every block boundary returns to
	// the dispatch loop, as in the pre-chaining executor. Benchmarks use it
	// to isolate the chaining win; it is also a debugging escape hatch.
	DisableChaining bool

	// bcache is the decoded basic-block cache: page number -> predecoded
	// blocks, validated against the page generation (see block.go).
	bcache map[uint64]*pageBlocks
	// lastPN/lastPB memoize the most recent bcache lookup.
	lastPN uint64
	lastPB *pageBlocks
	// cacheCap overrides maxCachedPages when nonzero (tests shrink it to
	// exercise eviction without building thousands of pages).
	cacheCap int
	// building guards superblock formation against re-entry: buildSuper
	// walks successor blocks through lookupBlock, which must not start a
	// nested formation.
	building bool

	// Halted is set by HLT, exit_group, or a fatal fault.
	Halted bool
	// stopReq asks the run loop to stop at the next instruction boundary.
	// It is atomic so watchdogs on other goroutines can interrupt a run
	// (RequestStop) without racing the executor.
	stopReq    atomic.Bool
	ExitStatus int
	// FatalFault is the fault that killed the process, if any.
	FatalFault *mem.Fault

	// lastTID/lastGranted/lastClipped/lastRan record the most recent
	// scheduler dispatch: the quantum the scheduler granted, what the
	// budget clip reduced it to, and how far the thread actually got.
	// Mid-run checkpoints derive the in-flight quantum remainder from them
	// (see PendingQuantum).
	lastTID     int
	lastGranted int
	lastClipped int
	lastRan     int

	fetchBuf [isa.LimmLen]byte
}

// New creates a machine around an existing kernel and process (no threads).
func New(k *kernel.Kernel, proc *kernel.Process) *Machine {
	return &Machine{
		Kernel: k,
		Proc:   proc,
		Sched:  NewRoundRobin(100, 0, 0),
	}
}

// NewLoaded creates a machine, loads the executable, and creates thread 0.
func NewLoaded(k *kernel.Kernel, exe *elfobj.File, argv, envp []string) (*Machine, error) {
	proc := kernel.NewProcess(k.FS)
	res, err := k.Load(proc, exe, argv, envp)
	if err != nil {
		return nil, err
	}
	m := New(k, proc)
	t := m.AddThread(isa.RegFile{PC: res.Entry})
	t.Regs.GPR[isa.RSP] = res.SP
	return m, nil
}

// Reset rewinds the machine to its freshly-constructed state around a new
// kernel and process, reusing the Machine allocation (the run harness's
// fast trial-reuse path). The decoded-block cache is dropped: a fresh
// address space restarts its generation clock, so stale (page, generation)
// keys from the previous run could otherwise collide with live ones.
func (m *Machine) Reset(k *kernel.Kernel, proc *kernel.Process) {
	m.Kernel = k
	m.Proc = proc
	m.Threads = m.Threads[:0]
	m.Sched = NewRoundRobin(100, 0, 0)
	m.Hooks = Hooks{}
	m.GlobalRetired = 0
	m.MaxInstructions = 0
	m.PauseDoesNotYield = false
	m.FaultInj = nil
	m.DisableBlockCache = false
	m.DisableChaining = false
	m.bcache = nil
	m.lastPN, m.lastPB = 0, nil
	m.cacheCap = 0
	m.building = false
	m.Halted = false
	m.stopReq.Store(false)
	m.ExitStatus = 0
	m.FatalFault = nil
	m.lastTID, m.lastGranted, m.lastClipped, m.lastRan = 0, 0, 0, 0
}

// AddThread creates a new runnable thread with the given initial registers.
func (m *Machine) AddThread(regs isa.RegFile) *Thread {
	t := &Thread{TID: len(m.Threads), Regs: regs, Alive: true}
	m.Threads = append(m.Threads, t)
	if m.Hooks.OnThreadStart != nil {
		m.Hooks.OnThreadStart(t)
	}
	return t
}

// AliveCount returns the number of runnable threads.
func (m *Machine) AliveCount() int {
	n := 0
	for _, t := range m.Threads {
		if t.Alive {
			n++
		}
	}
	return n
}

// RequestStop makes Run return at the next instruction boundary. Timing
// simulators use it to implement (PC, count) end conditions; farm watchdogs
// call it from other goroutines to trigger checkpoint-then-kill.
func (m *Machine) RequestStop() { m.stopReq.Store(true) }

// StopRequested reports whether a stop request is pending (Run clears it
// when it next starts). Checkpoint-capable run loops consult it after Run
// returns to distinguish an external interruption from a natural end.
func (m *Machine) StopRequested() bool { return m.stopReq.Load() }

// Run executes until no thread is runnable, the machine halts, RequestStop
// is called, or MaxInstructions is reached. It returns an error only for
// internal inconsistencies; guest faults are reported via thread state.
func (m *Machine) Run() error {
	m.stopReq.Store(false)
	for !m.Halted && !m.stopReq.Load() && m.AliveCount() > 0 {
		if m.MaxInstructions > 0 && m.GlobalRetired >= m.MaxInstructions {
			break
		}
		tid, quantum := m.Sched.Next(m)
		if tid < 0 {
			break
		}
		granted := quantum
		if m.MaxInstructions > 0 {
			if left := m.MaxInstructions - m.GlobalRetired; uint64(quantum) > left {
				quantum = int(left)
			}
		}
		ran := m.runThread(m.Threads[tid], quantum)
		m.Sched.Ran(tid, ran)
		m.lastTID, m.lastGranted, m.lastClipped, m.lastRan = tid, granted, quantum, ran
	}
	return nil
}

// PendingQuantum returns the unexecuted remainder of the scheduler quantum
// that was in flight when Run last stopped, with the thread it belongs to.
// It is non-zero only when the stop cut a quantum short from outside — the
// budget clip ran to its boundary, or a stop request landed mid-quantum. A
// thread that yielded or exited on its own owes nothing: an uninterrupted
// run would rotate past it too.
func (m *Machine) PendingQuantum() (tid, n int) {
	switch {
	case m.lastGranted <= m.lastRan:
		return m.lastTID, 0
	case m.stopReq.Load():
		return m.lastTID, m.lastGranted - m.lastRan
	case m.lastRan == m.lastClipped && m.lastGranted > m.lastClipped:
		return m.lastTID, m.lastGranted - m.lastClipped
	}
	return m.lastTID, 0
}

// exitThread marks t dead and fires the exit hook.
func (m *Machine) exitThread(t *Thread, status int) {
	if !t.Alive {
		return
	}
	t.Alive = false
	t.ExitStatus = status
	if m.Hooks.OnThreadExit != nil {
		m.Hooks.OnThreadExit(t)
	}
}

// exitGroup terminates the whole process.
func (m *Machine) exitGroup(status int) {
	for _, t := range m.Threads {
		m.exitThread(t, status)
	}
	m.Halted = true
	m.ExitStatus = status
}

// fatalFault kills the process on an unhandled fault (SIGSEGV semantics).
func (m *Machine) fatalFault(t *Thread, f *mem.Fault) {
	t.Fault = f
	m.FatalFault = f
	m.exitGroup(139) // 128 + SIGSEGV
}

// Stdout returns the process's accumulated standard output.
func (m *Machine) Stdout() []byte { return m.Proc.Stdout }

// Stderr returns the process's accumulated standard error.
func (m *Machine) Stderr() []byte { return m.Proc.Stderr }

// DumpState formats a short human-readable machine state (for debugging).
func (m *Machine) DumpState() string {
	s := fmt.Sprintf("retired=%d halted=%v exit=%d\n", m.GlobalRetired, m.Halted, m.ExitStatus)
	for _, t := range m.Threads {
		s += fmt.Sprintf("  t%d alive=%v pc=%#x retired=%d\n", t.TID, t.Alive, t.Regs.PC, t.Retired)
	}
	return s
}
