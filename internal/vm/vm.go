// Package vm implements the PVM-64 functional emulator: a multi-threaded
// machine with a pluggable scheduler, hardware-style per-thread performance
// counters, and instrumentation hooks.
//
// The hooks are the substrate for package pin (the Pin-like instrumentation
// framework); the scheduler abstraction is what lets the PinPlay replayer
// enforce the recorded thread interleaving while native ELFie runs get a
// seeded, jittering round-robin that models run-to-run variation.
package vm

import (
	"fmt"
	"math/rand"

	"elfie/internal/elfobj"
	"elfie/internal/fault"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/mem"
)

// Thread is one hardware thread of the machine.
type Thread struct {
	TID        int
	Regs       isa.RegFile
	Alive      bool
	ExitStatus int
	// Retired counts instructions this thread has retired.
	Retired uint64
	// Fault is set if the thread died on an unhandled memory fault
	// (the "ungraceful exit" of a divergent ELFie).
	Fault *mem.Fault
	// perf counters armed on this thread via perf_event_open.
	perf []*PerfCounter
}

// PerfCounter models one hardware performance counter counting retired
// instructions, with an overflow action — the mechanism pinball2elf uses
// for the graceful-exit challenge.
type PerfCounter struct {
	Period         uint64
	Handler        uint64
	ExitOnOverflow bool
	Fired          bool
	base           uint64 // thread Retired when armed
}

// Count returns the counter's current value for a thread.
func (p *PerfCounter) Count(t *Thread) uint64 { return t.Retired - p.base }

// Hooks are instrumentation callbacks. Any nil hook is skipped. Hooks fire
// before the architectural effect they describe.
type Hooks struct {
	// OnIns fires before each instruction executes.
	OnIns func(t *Thread, pc uint64, ins isa.Inst)
	// OnMemRead/OnMemWrite fire before a data memory access.
	OnMemRead  func(t *Thread, addr uint64, size int)
	OnMemWrite func(t *Thread, addr uint64, size int)
	// OnBranch fires after a control-flow instruction resolves.
	OnBranch func(t *Thread, pc, target uint64, taken bool)
	// OnMarker fires for CPUID/SSCMARK/MAGIC marker instructions.
	OnMarker func(t *Thread, op isa.Op, tag uint32)
	// SyscallFilter, when non-nil, may handle a system call entirely
	// (returning handled=true) — the replayer's side-effect injection.
	SyscallFilter func(t *Thread, num uint64) (res kernel.Result, handled bool)
	// OnSyscall fires after a system call (native or injected) completes.
	OnSyscall func(t *Thread, num uint64, res kernel.Result)
	// OnFault may handle a memory fault (e.g. by injecting a logged page);
	// returning true retries the faulting instruction.
	OnFault func(t *Thread, f *mem.Fault) bool
	// OnThreadStart/OnThreadExit bracket a thread's life.
	OnThreadStart func(t *Thread)
	OnThreadExit  func(t *Thread)
}

// Scheduler picks the next thread to run and learns how far it got.
type Scheduler interface {
	// Next returns the TID to run and its quantum in instructions.
	// It is only called with at least one runnable thread.
	Next(m *Machine) (tid, quantum int)
	// Ran reports how many instructions the chosen thread executed
	// (possibly fewer than the quantum).
	Ran(tid, n int)
}

// RoundRobin is the default scheduler: rotate over runnable threads with a
// fixed quantum plus optional seeded jitter. Jitter models the OS-level
// run-to-run variation that makes multi-threaded ELFie runs non-
// deterministic; the PinPlay logger runs with Jitter = 0.
type RoundRobin struct {
	Quantum int
	Jitter  int
	rng     *rand.Rand
	last    int
}

// NewRoundRobin returns a round-robin scheduler. If jitter > 0, quanta vary
// uniformly in [quantum-jitter, quantum+jitter], driven by seed.
func NewRoundRobin(quantum, jitter int, seed int64) *RoundRobin {
	return &RoundRobin{Quantum: quantum, Jitter: jitter, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Scheduler.
func (rr *RoundRobin) Next(m *Machine) (int, int) {
	n := len(m.Threads)
	for i := 1; i <= n; i++ {
		tid := (rr.last + i) % n
		if m.Threads[tid].Alive {
			rr.last = tid
			q := rr.Quantum
			if rr.Jitter > 0 {
				q += rr.rng.Intn(2*rr.Jitter+1) - rr.Jitter
				if q < 1 {
					q = 1
				}
			}
			return tid, q
		}
	}
	return -1, 0
}

// Ran implements Scheduler.
func (rr *RoundRobin) Ran(tid, n int) {}

// SchedRecord is one run of instructions by one thread, as recorded by the
// PinPlay logger and enforced by the replayer.
type SchedRecord struct {
	TID int
	N   uint64
}

// TraceScheduler replays a recorded schedule exactly, then falls back to
// round-robin when the trace is exhausted.
type TraceScheduler struct {
	Trace    []SchedRecord
	pos      int
	consumed uint64
	Fallback Scheduler
}

// Next implements Scheduler.
func (ts *TraceScheduler) Next(m *Machine) (int, int) {
	for ts.pos < len(ts.Trace) {
		rec := ts.Trace[ts.pos]
		remaining := rec.N - ts.consumed
		if remaining == 0 {
			ts.pos++
			ts.consumed = 0
			continue
		}
		if rec.TID < len(m.Threads) && m.Threads[rec.TID].Alive {
			q := remaining
			if q > 1<<20 {
				q = 1 << 20
			}
			return rec.TID, int(q)
		}
		// Recorded thread is gone; skip the record.
		ts.pos++
		ts.consumed = 0
	}
	if ts.Fallback == nil {
		ts.Fallback = NewRoundRobin(100, 0, 0)
	}
	return ts.Fallback.Next(m)
}

// Ran implements Scheduler.
func (ts *TraceScheduler) Ran(tid, n int) {
	if ts.pos < len(ts.Trace) && ts.Trace[ts.pos].TID == tid {
		ts.consumed += uint64(n)
		if ts.consumed >= ts.Trace[ts.pos].N {
			ts.pos++
			ts.consumed = 0
		}
	}
}

// Exhausted reports whether the recorded schedule has been fully consumed.
func (ts *TraceScheduler) Exhausted() bool { return ts.pos >= len(ts.Trace) }

// Machine is one emulated PVM computer running a single process.
type Machine struct {
	Kernel  *kernel.Kernel
	Proc    *kernel.Process
	Threads []*Thread
	Sched   Scheduler
	Hooks   Hooks

	// GlobalRetired counts instructions retired machine-wide.
	GlobalRetired uint64
	// MaxInstructions stops the run when GlobalRetired reaches it (0 = off).
	MaxInstructions uint64
	// PauseDoesNotYield makes PAUSE a pure timing hint instead of a
	// scheduler yield. The default (yielding) models timeslicing on few
	// CPUs; simulators of many-core machines where each thread owns a core
	// set it, so active-wait spin loops burn instructions at full rate, as
	// they do on hardware.
	PauseDoesNotYield bool

	// FaultInj, when non-nil, raises synthetic machine faults — forced page
	// faults and ungraceful exits — at the retired-instruction thresholds
	// its plan specifies.
	FaultInj *fault.Injector

	// DisableBlockCache forces the per-instruction interpreter even when no
	// instrumentation hooks are installed. Benchmarks use it as the baseline;
	// it is also an escape hatch when debugging the fast path.
	DisableBlockCache bool

	// bcache is the decoded basic-block cache: page number -> predecoded
	// blocks, validated against the page generation (see block.go).
	bcache map[uint64]*pageBlocks
	// lastPN/lastPB memoize the most recent bcache lookup.
	lastPN uint64
	lastPB *pageBlocks

	// Halted is set by HLT, exit_group, or a fatal fault.
	Halted bool
	// stopReq asks the run loop to stop at the next instruction boundary
	// (set via RequestStop, e.g. by a simulator's end condition).
	stopReq    bool
	ExitStatus int
	// FatalFault is the fault that killed the process, if any.
	FatalFault *mem.Fault

	fetchBuf [isa.LimmLen]byte
}

// New creates a machine around an existing kernel and process (no threads).
func New(k *kernel.Kernel, proc *kernel.Process) *Machine {
	return &Machine{
		Kernel: k,
		Proc:   proc,
		Sched:  NewRoundRobin(100, 0, 0),
	}
}

// NewLoaded creates a machine, loads the executable, and creates thread 0.
func NewLoaded(k *kernel.Kernel, exe *elfobj.File, argv, envp []string) (*Machine, error) {
	proc := kernel.NewProcess(k.FS)
	res, err := k.Load(proc, exe, argv, envp)
	if err != nil {
		return nil, err
	}
	m := New(k, proc)
	t := m.AddThread(isa.RegFile{PC: res.Entry})
	t.Regs.GPR[isa.RSP] = res.SP
	return m, nil
}

// Reset rewinds the machine to its freshly-constructed state around a new
// kernel and process, reusing the Machine allocation (the run harness's
// fast trial-reuse path). The decoded-block cache is dropped: a fresh
// address space restarts its generation clock, so stale (page, generation)
// keys from the previous run could otherwise collide with live ones.
func (m *Machine) Reset(k *kernel.Kernel, proc *kernel.Process) {
	m.Kernel = k
	m.Proc = proc
	m.Threads = m.Threads[:0]
	m.Sched = NewRoundRobin(100, 0, 0)
	m.Hooks = Hooks{}
	m.GlobalRetired = 0
	m.MaxInstructions = 0
	m.PauseDoesNotYield = false
	m.FaultInj = nil
	m.DisableBlockCache = false
	m.bcache = nil
	m.lastPN, m.lastPB = 0, nil
	m.Halted = false
	m.stopReq = false
	m.ExitStatus = 0
	m.FatalFault = nil
}

// AddThread creates a new runnable thread with the given initial registers.
func (m *Machine) AddThread(regs isa.RegFile) *Thread {
	t := &Thread{TID: len(m.Threads), Regs: regs, Alive: true}
	m.Threads = append(m.Threads, t)
	if m.Hooks.OnThreadStart != nil {
		m.Hooks.OnThreadStart(t)
	}
	return t
}

// AliveCount returns the number of runnable threads.
func (m *Machine) AliveCount() int {
	n := 0
	for _, t := range m.Threads {
		if t.Alive {
			n++
		}
	}
	return n
}

// RequestStop makes Run return at the next instruction boundary. Timing
// simulators use it to implement (PC, count) end conditions.
func (m *Machine) RequestStop() { m.stopReq = true }

// Run executes until no thread is runnable, the machine halts, RequestStop
// is called, or MaxInstructions is reached. It returns an error only for
// internal inconsistencies; guest faults are reported via thread state.
func (m *Machine) Run() error {
	m.stopReq = false
	for !m.Halted && !m.stopReq && m.AliveCount() > 0 {
		if m.MaxInstructions > 0 && m.GlobalRetired >= m.MaxInstructions {
			break
		}
		tid, quantum := m.Sched.Next(m)
		if tid < 0 {
			break
		}
		if m.MaxInstructions > 0 {
			if left := m.MaxInstructions - m.GlobalRetired; uint64(quantum) > left {
				quantum = int(left)
			}
		}
		ran := m.runThread(m.Threads[tid], quantum)
		m.Sched.Ran(tid, ran)
	}
	return nil
}

// exitThread marks t dead and fires the exit hook.
func (m *Machine) exitThread(t *Thread, status int) {
	if !t.Alive {
		return
	}
	t.Alive = false
	t.ExitStatus = status
	if m.Hooks.OnThreadExit != nil {
		m.Hooks.OnThreadExit(t)
	}
}

// exitGroup terminates the whole process.
func (m *Machine) exitGroup(status int) {
	for _, t := range m.Threads {
		m.exitThread(t, status)
	}
	m.Halted = true
	m.ExitStatus = status
}

// fatalFault kills the process on an unhandled fault (SIGSEGV semantics).
func (m *Machine) fatalFault(t *Thread, f *mem.Fault) {
	t.Fault = f
	m.FatalFault = f
	m.exitGroup(139) // 128 + SIGSEGV
}

// Stdout returns the process's accumulated standard output.
func (m *Machine) Stdout() []byte { return m.Proc.Stdout }

// Stderr returns the process's accumulated standard error.
func (m *Machine) Stderr() []byte { return m.Proc.Stderr }

// DumpState formats a short human-readable machine state (for debugging).
func (m *Machine) DumpState() string {
	s := fmt.Sprintf("retired=%d halted=%v exit=%d\n", m.GlobalRetired, m.Halted, m.ExitStatus)
	for _, t := range m.Threads {
		s += fmt.Sprintf("  t%d alive=%v pc=%#x retired=%d\n", t.TID, t.Alive, t.Regs.PC, t.Retired)
	}
	return s
}
