package vm

import (
	"encoding/binary"

	"elfie/internal/isa"
	"elfie/internal/mem"
)

// This file implements the decoded-block fast path: a basic-block cache
// (PR 4) extended with direct block-to-block chaining and superblock/trace
// formation. When no per-instruction instrumentation is installed (elfierun
// replay, farm validation), the interpreter predecodes straight-line
// instruction runs into per-page blocks and executes them in a tight loop
// that skips the fetch/decode work of Machine.step; hot block edges are
// then linked so control transfers block → block without re-entering the
// dispatch loop, and edges that stay hot are spliced into cross-branch,
// cross-page superblocks.
//
// Soundness hinges on generation validation: blocks are keyed by
// (page number, page generation), and mem.AddrSpace gives a page a fresh
// generation whenever it is (re)mapped or — for executable pages — written.
// A block whose page generation no longer matches is unreachable and gets
// rebuilt; a store *during* a batch is caught by re-checking the
// address-space clock after every retired instruction, so self-modifying
// code that rewrites its own block — or a block further down the chain —
// takes effect at the very next instruction, exactly as in the
// per-instruction path. Chain links ride on the same clock: a link is
// followed only while the target's okClock matches the current clock, so a
// single clock advance severs every link in the machine at once (see
// dblock).

const (
	// maxBlockLen caps the instructions predecoded into one basic block.
	maxBlockLen = 128
	// maxCachedPages bounds the block cache; reaching it triggers
	// second-chance eviction of cold pages (evictCold).
	maxCachedPages = 4096
	// superThreshold is the dispatch count after which a block is
	// considered hot and superblock formation is attempted on it.
	superThreshold = 32
	// maxSuperLen caps the instructions spliced into one superblock.
	maxSuperLen = 512
	// maxSuperBlocks caps the basic blocks spliced into one superblock.
	maxSuperBlocks = 64
	// segMin is the shortest batch run worth a runSeg call: below it the
	// call overhead exceeds what batching saves over the per-instruction
	// retire paths, which handle every opcode anyway.
	segMin = 4

	pageMask = mem.PageSize - 1
)

// dblock is one decoded run of instructions: a basic block (straight-line
// run ending at the first control transfer, never crossing a page) or a
// superblock (the hot path through several basic blocks spliced across
// branches, calls, and pages — see buildSuper). An empty ins slice is the
// negative cache for addresses the fast path must not batch (deopt
// opcodes, page-straddling or undecodable words): the per-instruction path
// executes those with precise fault and hook semantics.
//
// Chaining. l0/l1 cache the two most recently taken successor blocks,
// keyed by their entry PCs. A link may be followed only while the target's
// okClock equals the current address-space clock — i.e. the target was
// validated after the most recent mapping change or executable-page write
// — so the hot edge costs one compare instead of a map lookup plus
// generation check. Any clock advance severs every link in the machine at
// once; links self-heal through lookupBlock, which re-validates page
// generations and refreshes okClock. A block that leaves the cache
// (eviction, page rebuild, superblock promotion) is simply never refreshed
// again: links into it stay sound while the address space is unchanged
// (the decoded code is still exact) and die at the next clock advance, so
// dead code can never resurrect through a stale link.
type dblock struct {
	ins []isa.DecInst
	// spc[i] is the guest PC of ins[i]. The executor's universal side-exit
	// rule compares each computed successor against the next entry: a
	// mismatch (a branch that left the trace, a side exit) transfers out
	// with precise state instead of running the next spliced instruction.
	spc []uint64
	// run[i] is the length of the pure-op run starting at ins[i]: maximal
	// consecutive instructions that cannot fault, store, branch, or enter
	// the kernel (and, in a superblock, that are sequential across splice
	// boundaries). The executor retires such a run in one batch with the
	// budget, clock, and side-exit checks hoisted out of the loop — the
	// core of the threaded dispatch win. 0 marks ops that need the full
	// per-instruction path.
	run []uint16
	// pages lists every (page, generation) the code spans. nil means the
	// entry page only, which the cache key already validates; superblocks
	// record the full set and are re-validated page by page.
	pages []pageGen
	// okClock is the address-space clock at last validation (see above).
	okClock uint64
	// loop marks a block whose terminator is a direct (conditional) jump
	// back to its own entry and whose entire body is one batch run: a
	// tight self-loop. The executor runs such a block in loop mode —
	// iterations retire inside runSeg with the backedge evaluated inline,
	// paying no call, dispatch, or link cost per trip around the loop.
	loop bool
	// heat counts dispatches, saturating just past superThreshold.
	heat uint32
	// superDone marks that superblock formation was already attempted from
	// this entry (or that this block is the result of one).
	superDone bool
	// l0pc/l0 and l1pc/l1 are the chain-link cache, most recent first.
	l0pc, l1pc uint64
	l0, l1     *dblock
	// lastNext is the most recently observed successor entry PC; trace
	// formation follows it to splice the hot path.
	lastNext uint64
}

// pageGen is one page-number/generation pair a superblock depends on.
type pageGen struct {
	pn, gen uint64
}

// pageBlocks holds the decoded blocks of one executable page at one
// generation. hot is the second-chance reference bit: set on every lookup,
// cleared by an eviction sweep, and pages found cold by the next sweep are
// dropped.
type pageBlocks struct {
	gen    uint64
	blocks map[uint64]*dblock
	hot    bool
}

// fastPathOK reports whether execution may use the block fast path. Any
// per-instruction observation hook forces the step path so hooks fire in
// order; SyscallFilter/OnSyscall/OnFault and the thread hooks are
// compatible with the fast path because syscalls the chain cannot retire
// inline and faults fall back to step semantics.
func (m *Machine) fastPathOK() bool {
	h := &m.Hooks
	return !m.DisableBlockCache && m.FaultInj == nil &&
		h.OnIns == nil && h.OnMemRead == nil && h.OnMemWrite == nil &&
		h.OnBranch == nil && h.OnMarker == nil
}

// deoptOp reports opcodes the block executor refuses to batch: they yield,
// halt, or touch bulk state, and the step path already implements their
// exact semantics. The decision keys off the shared per-opcode effect
// metadata in internal/isa so the batching policy and the static
// verifier's instruction model cannot drift apart. SYSCALL (DetKernel) is
// the one exception, special-cased in buildBlock: it stays in the block as
// a terminator so the chain executor can retire pure-return syscalls
// inline and hand everything else to step.
func deoptOp(o isa.Op) bool {
	switch isa.Determinism(o) {
	case isa.DetKernel, isa.DetControl:
		return true
	}
	return isa.BulkState(o)
}

// runThreadFast is the hook-free twin of runThread: execute cached block
// chains when possible, fall back to single steps at boundaries the cache
// cannot cover (non-inlineable syscalls, faults, cross-page words).
func (m *Machine) runThreadFast(t *Thread, quantum int) int {
	ran := 0
	for ran < quantum && t.Alive && !m.Halted && !m.stopReq.Load() {
		blk := m.lookupBlock(t.Regs.PC)
		if blk == nil || len(blk.ins) == 0 {
			yielded, retired := m.step(t)
			if retired {
				ran++
			}
			if yielded {
				break
			}
			continue
		}
		// The armed-perf-counter budget check is hoisted here so the
		// common unarmed case pays one branch per chain, not per block.
		// Syscalls that could arm a counter never retire inside a chain,
		// so the armed set is stable across one execChain call.
		budget := quantum - ran
		if len(t.perf) > 0 {
			budget = m.blockBudget(t, budget)
		}
		n, needStep := m.execChain(t, blk, budget)
		ran += n
		if m.checkPerfOverflow(t) {
			break
		}
		if needStep {
			yielded, retired := m.step(t)
			if retired {
				ran++
			}
			if yielded {
				break
			}
		}
	}
	return ran
}

// blockBudget bounds one chain batch so no armed perf counter can overflow
// mid-batch: the overflow check after the batch then fires at exactly the
// same retired count as the per-instruction path.
func (m *Machine) blockBudget(t *Thread, quantum int) int {
	budget := quantum
	for _, p := range t.perf {
		if p.Fired {
			continue
		}
		left := p.Period - (t.Retired - p.base)
		if left < uint64(budget) {
			budget = int(left)
		}
	}
	return budget
}

// cacheCapacity returns the block-cache page bound (test-overridable).
func (m *Machine) cacheCapacity() int {
	if m.cacheCap > 0 {
		return m.cacheCap
	}
	return maxCachedPages
}

// evictCold makes room in the block cache with second-chance eviction:
// pages looked up since the previous sweep survive and lose their
// reference bit, cold pages are dropped. If everything is hot an arbitrary
// quarter is dropped so the sweep always frees room. Eviction is invisible
// to correctness: it does not advance the address-space clock, so chain
// links into an evicted page's blocks keep validating by okClock — the
// decoded code is still exact — until the address space actually changes.
func (m *Machine) evictCold() {
	evicted := 0
	for pn, pb := range m.bcache {
		if pb.hot {
			pb.hot = false
		} else {
			delete(m.bcache, pn)
			evicted++
		}
	}
	if evicted == 0 {
		target := len(m.bcache)/4 + 1
		for pn := range m.bcache {
			delete(m.bcache, pn)
			if evicted++; evicted >= target {
				break
			}
		}
	}
	m.lastPN, m.lastPB = 0, nil
}

// lookupBlock returns the decoded block starting at pc, building it on
// demand and re-validating it against the page-generation clock. nil means
// pc is not mapped executable (step will raise the fault); an empty block
// means "single-step this address". Hot entries are promoted to
// superblocks here — this is the one place with the page handle in hand.
func (m *Machine) lookupBlock(pc uint64) *dblock {
	as := m.Proc.AS
	gen, ok := as.ExecGen(pc)
	if !ok {
		return nil
	}
	pn := mem.PageNum(pc)
	pb := m.lastPB
	if pb == nil || m.lastPN != pn || pb.gen != gen {
		if m.bcache == nil {
			m.bcache = make(map[uint64]*pageBlocks)
		}
		pb = m.bcache[pn]
		if pb == nil || pb.gen != gen {
			if len(m.bcache) >= m.cacheCapacity() {
				m.evictCold()
			}
			pb = &pageBlocks{gen: gen, blocks: make(map[uint64]*dblock)}
			m.bcache[pn] = pb
		}
		m.lastPN, m.lastPB = pn, pb
	}
	pb.hot = true
	clock := as.Clock()
	blk := pb.blocks[pc]
	if blk == nil {
		blk = m.buildBlock(pc)
		pb.blocks[pc] = blk
	} else if blk.okClock != clock {
		if m.pagesValid(blk) {
			blk.okClock = clock
		} else {
			// The code changed under the block (a superblock's tail page
			// was rewritten). Replace it; backdating okClock guarantees
			// stale chain links into the dead block never validate again.
			blk.okClock--
			blk = m.buildBlock(pc)
			pb.blocks[pc] = blk
		}
	}
	if blk.heat <= superThreshold {
		blk.heat++
	} else if !blk.superDone && !m.building && !m.DisableChaining {
		blk.superDone = true
		if sb := m.buildSuper(pc, blk); sb != nil {
			// Retire the plain block: backdate its okClock so existing
			// chain links stop validating and re-resolve — through here —
			// to the superblock.
			blk.okClock--
			sb.heat = blk.heat
			blk = sb
			pb.blocks[pc] = sb
		}
	}
	return blk
}

// pagesValid re-checks every page generation a block was decoded from.
// Basic blocks (pages == nil) span only their entry page, which the cache
// key validates; superblocks carry the full list.
func (m *Machine) pagesValid(blk *dblock) bool {
	for _, pg := range blk.pages {
		gen, ok := m.Proc.AS.ExecGen(pg.pn << mem.PageShift)
		if !ok || gen != pg.gen {
			return false
		}
	}
	return true
}

// buildBlock predecodes the straight-line run at pc, truncating at the
// first deopt opcode. SYSCALL is kept as a block terminator (see
// execChain's inline fast path). Basic blocks never span pages: the
// predecoder stops at the page's end, and a word straddling the boundary
// is simply left to step.
func (m *Machine) buildBlock(pc uint64) *dblock {
	as := m.Proc.AS
	win, _, err := as.ExecWindow(pc)
	if err != nil {
		return &dblock{okClock: as.Clock()}
	}
	ins := isa.PredecodeBlock(win, pc, maxBlockLen)
	for i := range ins {
		if op := ins[i].Op; deoptOp(op) {
			if op == isa.SYSCALL {
				ins = ins[:i+1]
			} else {
				ins = ins[:i]
			}
			break
		}
	}
	spc := make([]uint64, len(ins))
	for i := range ins {
		spc[i] = ins[i].PC()
	}
	b := &dblock{ins: ins, spc: spc, okClock: as.Clock()}
	attachRuns(b)
	return b
}

// batchOp reports opcodes the batch executor can retire inside a run:
// everything runSeg handles, plus the loads, stores, and stack ops whose
// TLB-head misses the memop tier recovers with exact spill state (a
// fault, or a store that advances the page-generation clock). Control
// transfers are excluded — a run must be straight-line — and so are
// RDTSC, SYSCALL, and the vector memory ops: the per-instruction retire
// paths handle those at full precision, and runs broken around them
// would be too short to amortize a runSeg call anyway.
func batchOp(o isa.Op) bool {
	switch o {
	case isa.NOP, isa.FENCE, isa.SSCMARK, isa.MAGIC,
		isa.MOV, isa.MOVI, isa.LIMM,
		isa.ADD, isa.SUB, isa.MUL, isa.UDIV, isa.SDIV, isa.UREM,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR,
		isa.NOT, isa.NEG,
		isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SHLI, isa.SHRI, isa.SARI,
		isa.LEA1, isa.LEA8,
		isa.CMP, isa.CMPI, isa.TEST, isa.TESTI,
		isa.CPUID,
		isa.LDQ, isa.LDW, isa.LDH, isa.LDB, isa.LDSB, isa.LDSH, isa.LDSW,
		isa.STQ, isa.STW, isa.STH, isa.STB,
		isa.PUSH, isa.PUSHF, isa.POP, isa.POPF,
		isa.WRFSBASE, isa.RDFSBASE, isa.WRGSBASE, isa.RDGSBASE,
		isa.VADDQ, isa.VMULQ, isa.VXOR, isa.VMOVQ, isa.MOVQV:
		return true
	}
	return false
}

// attachRuns computes the batch-op run lengths for a block (see
// dblock.run). A run may only flow into the next instruction when
// execution is guaranteed sequential there: the op's Next equals the next
// recorded PC, which is trivially true inside a basic block and holds
// across superblock splice boundaries exactly when the boundary is a
// fall-through.
func attachRuns(b *dblock) {
	n := len(b.ins)
	b.run = make([]uint16, n)
	for j := n - 1; j >= 0; j-- {
		if !batchOp(b.ins[j].Op) {
			continue
		}
		r := uint16(1)
		if j+1 < n && b.ins[j].Next == b.spc[j+1] {
			r += b.run[j+1]
		}
		b.run[j] = r
	}
	// Tight self-loop: the terminator jumps straight back to the entry and
	// the whole body is one batch run, so the executor may retire entire
	// iterations inside runSeg with the backedge evaluated inline.
	if n >= 2 && int(b.run[0]) == n-1 {
		switch t := &b.ins[n-1]; t.Op {
		case isa.JMP, isa.JZ, isa.JNZ, isa.JL, isa.JLE, isa.JG, isa.JGE,
			isa.JB, isa.JBE, isa.JA, isa.JAE, isa.JS, isa.JNS:
			b.loop = t.Target == b.spc[0]
		}
	}
}

// buildSuper splices the observed hot control-flow path starting at entry
// into one straight-line superblock crossing branches, calls, and pages.
// The trace follows each constituent block's last observed successor
// (lastNext) and stops when the path closes (back to the entry, or any
// block repeats — inner loop back-edges), leaves batchable code, or hits
// the size caps. No compensation code is needed at splice boundaries: the
// executor's universal side-exit rule (computed successor must equal the
// next spliced PC) guards every boundary at run time, so a cold-path
// branch simply transfers out with precise state. Returns nil when the
// trace would be no longer than the entry block itself — a pure self-loop,
// which plain self-chaining already runs back to back.
func (m *Machine) buildSuper(entryPC uint64, entry *dblock) *dblock {
	as := m.Proc.AS
	m.building = true
	defer func() { m.building = false }()

	var (
		ins   []isa.DecInst
		spc   []uint64
		pages []pageGen
	)
	addPage := func(pc uint64) bool {
		pn := mem.PageNum(pc)
		for _, pg := range pages {
			if pg.pn == pn {
				return true
			}
		}
		gen, ok := as.ExecGen(pc)
		if !ok {
			return false
		}
		pages = append(pages, pageGen{pn: pn, gen: gen})
		return true
	}
	seen := make(map[uint64]bool)
	pc, blk := entryPC, entry
	for len(ins) < maxSuperLen && len(seen) < maxSuperBlocks {
		if blk == nil || len(blk.ins) == 0 || seen[pc] || !addPage(pc) {
			break
		}
		seen[pc] = true
		ins = append(ins, blk.ins...)
		spc = append(spc, blk.spc...)
		nxt := blk.lastNext
		if nxt == 0 || nxt == entryPC {
			break
		}
		pc = nxt
		blk = m.lookupBlock(nxt)
	}
	if len(ins) <= len(entry.ins) {
		return nil
	}
	if len(ins) > maxSuperLen {
		ins, spc = ins[:maxSuperLen], spc[:maxSuperLen]
	}
	sb := &dblock{ins: ins, spc: spc, pages: pages,
		okClock: as.Clock(), superDone: true}
	attachRuns(sb)
	return sb
}

// syscallInline retires a side-effect-free system call without spilling
// hot state or entering the full kernel dispatch. Two providers: the
// kernel's own pure-return fast path (native runs), or the
// Hooks.SyscallFast injection fast path (constrained replay). Anything
// else — observation hooks installed, impure syscalls, a mismatched log
// entry — declines, and the caller hands the instruction to step for full
// semantics.
func (m *Machine) syscallInline(t *Thread, num uint64) (uint64, bool) {
	h := &m.Hooks
	if h.OnSyscall != nil {
		return 0, false
	}
	if h.SyscallFilter != nil {
		if h.SyscallFast == nil {
			return 0, false
		}
		return h.SyscallFast(t, num)
	}
	return m.Kernel.SyscallFast(num)
}

// chainLoad is the block executor's out-of-line load path: an in-page
// access goes through the read TLB and returns the page handle so the
// caller can refill its local TLB head; a page-straddling access takes the
// general path. A fault is returned, not raised — the caller must spill
// hot state before handleFault.
func chainLoad(as *mem.AddrSpace, addr uint64, size int) (uint64, *[mem.PageSize]byte, error) {
	off := addr & pageMask
	if off+uint64(size) <= mem.PageSize {
		if pg := as.ReadPage(addr); pg != nil {
			b := pg[off:]
			switch size {
			case 8:
				return binary.LittleEndian.Uint64(b), pg, nil
			case 4:
				return uint64(binary.LittleEndian.Uint32(b)), pg, nil
			case 2:
				return uint64(binary.LittleEndian.Uint16(b)), pg, nil
			default:
				return uint64(b[0]), pg, nil
			}
		}
	}
	var buf [8]byte
	if err := as.Read(addr, buf[:size]); err != nil {
		return 0, nil, err
	}
	return leBytes(buf[:size]), nil, nil
}

// chainStore is the store twin of chainLoad. The in-page path never sees
// an executable page — mem.WritePage refuses them — so every store that
// could be self-modifying code funnels through AddrSpace.Write, which
// stamps the page generation and advances the clock the executor re-checks
// after each instruction.
func chainStore(as *mem.AddrSpace, addr, v uint64, size int) (*[mem.PageSize]byte, error) {
	off := addr & pageMask
	if off+uint64(size) <= mem.PageSize {
		if pg := as.WritePage(addr); pg != nil {
			b := pg[off:]
			switch size {
			case 8:
				binary.LittleEndian.PutUint64(b, v)
			case 4:
				binary.LittleEndian.PutUint32(b, uint32(v))
			case 2:
				binary.LittleEndian.PutUint16(b, uint16(v))
			default:
				b[0] = byte(v)
			}
			return pg, nil
		}
	}
	var buf [8]byte
	putBytes(buf[:], v)
	if err := as.Write(addr, buf[:size]); err != nil {
		return nil, err
	}
	return nil, nil
}

// runSeg retires the register-only and TLB-head-hit portion of a batch
// run — sl[i:end] — stopping early at the first op that needs the memop
// tier: a head miss, or a stack op on a fresh page. It returns the new
// instruction index, flags, and the completed loop-iteration count;
// i < end signals an early stop with sl[i] unexecuted. Nothing in here
// can fault, advance the address-space clock (the write head never holds
// an executable page), or leave the run, which is why the caller can
// hoist every per-instruction check. Kept out of execChain — and marked
// noinline — deliberately: as a call-free leaf the register allocator
// pins the hot state (guest registers, flags, TLB heads, cursor) in
// machine registers, where the same loop inlined into execChain pays
// per-iteration stack reloads of everything execChain keeps live.
//
// Loop mode (maxIters > 0, only for dblock.loop blocks): sl is the whole
// block, end indexes its backedge terminator, and after the body retires
// the branch at sl[end] is evaluated inline — taken means another
// iteration runs without leaving the function, up to maxIters complete
// trips. The caller accounts wrapped*len(sl) retired instructions on top
// of the i ops of the final partial iteration; a return with i == end
// means the backedge was not taken and is still unexecuted, i == 0 with
// wrapped == maxIters means the budget slice is used up. maxIters == 0
// is plain segment mode, where sl[end] is never touched (and for
// sl == ins[:end] would be out of range).
//
//go:noinline
func runSeg(sl []isa.DecInst, i, end, maxIters int, g *[isa.NumGPR]uint64, flags uint64,
	rdPN, wrPN uint64, rdPg, wrPg *[mem.PageSize]byte, r *isa.RegFile) (int, uint64, int) {
	wrapped := 0
loop:
	for ; i < end; i++ {
		d := &sl[i]
		switch d.Op {
		case isa.NOP, isa.FENCE, isa.SSCMARK, isa.MAGIC:
			// Markers are no-ops: fastPathOK guarantees OnMarker is nil.
		case isa.MOV:
			g[d.A&15] = g[d.B&15]
		case isa.MOVI, isa.LIMM:
			g[d.A&15] = d.Imm
		case isa.ADD:
			g[d.A&15] = g[d.B&15] + g[d.C&15]
		case isa.SUB:
			g[d.A&15] = g[d.B&15] - g[d.C&15]
		case isa.MUL:
			g[d.A&15] = g[d.B&15] * g[d.C&15]
		case isa.UDIV:
			if g[d.C&15] == 0 {
				g[d.A&15] = ^uint64(0)
			} else {
				g[d.A&15] = g[d.B&15] / g[d.C&15]
			}
		case isa.SDIV:
			if g[d.C&15] == 0 {
				g[d.A&15] = ^uint64(0)
			} else {
				g[d.A&15] = uint64(int64(g[d.B&15]) / int64(g[d.C&15]))
			}
		case isa.UREM:
			if g[d.C&15] == 0 {
				g[d.A&15] = g[d.B&15]
			} else {
				g[d.A&15] = g[d.B&15] % g[d.C&15]
			}
		case isa.AND:
			g[d.A&15] = g[d.B&15] & g[d.C&15]
		case isa.OR:
			g[d.A&15] = g[d.B&15] | g[d.C&15]
		case isa.XOR:
			g[d.A&15] = g[d.B&15] ^ g[d.C&15]
		case isa.SHL:
			g[d.A&15] = g[d.B&15] << (g[d.C&15] & 63)
		case isa.SHR:
			g[d.A&15] = g[d.B&15] >> (g[d.C&15] & 63)
		case isa.SAR:
			g[d.A&15] = uint64(int64(g[d.B&15]) >> (g[d.C&15] & 63))
		case isa.NOT:
			g[d.A&15] = ^g[d.B&15]
		case isa.NEG:
			g[d.A&15] = -g[d.B&15]
		case isa.ADDI:
			g[d.A&15] = g[d.B&15] + d.Imm
		case isa.MULI:
			g[d.A&15] = g[d.B&15] * d.Imm
		case isa.ANDI:
			g[d.A&15] = g[d.B&15] & d.Imm
		case isa.ORI:
			g[d.A&15] = g[d.B&15] | d.Imm
		case isa.XORI:
			g[d.A&15] = g[d.B&15] ^ d.Imm
		case isa.SHLI:
			g[d.A&15] = g[d.B&15] << (d.Imm & 63)
		case isa.SHRI:
			g[d.A&15] = g[d.B&15] >> (d.Imm & 63)
		case isa.SARI:
			g[d.A&15] = uint64(int64(g[d.B&15]) >> (d.Imm & 63))
		case isa.LEA1:
			g[d.A&15] = g[d.B&15] + g[d.C&15] + d.Imm
		case isa.LEA8:
			g[d.A&15] = g[d.B&15] + g[d.C&15]*8 + d.Imm
		case isa.CMP:
			flags = subFlags(g[d.B&15], g[d.C&15])
		case isa.CMPI:
			flags = subFlags(g[d.B&15], d.Imm)
		case isa.TEST:
			flags = logicFlags(g[d.B&15] & g[d.C&15])
		case isa.TESTI:
			flags = logicFlags(g[d.B&15] & d.Imm)
		case isa.CPUID:
			g[d.A&15] = 0x50564d31
		case isa.WRFSBASE:
			r.FSBase = g[d.A&15]
		case isa.RDFSBASE:
			g[d.A&15] = r.FSBase
		case isa.WRGSBASE:
			r.GSBase = g[d.A&15]
		case isa.RDGSBASE:
			g[d.A&15] = r.GSBase
		case isa.VADDQ:
			r.V[d.A&7][0] = r.V[d.B&7][0] + r.V[d.C&7][0]
			r.V[d.A&7][1] = r.V[d.B&7][1] + r.V[d.C&7][1]
		case isa.VMULQ:
			r.V[d.A&7][0] = r.V[d.B&7][0] * r.V[d.C&7][0]
			r.V[d.A&7][1] = r.V[d.B&7][1] * r.V[d.C&7][1]
		case isa.VXOR:
			r.V[d.A&7][0] = r.V[d.B&7][0] ^ r.V[d.C&7][0]
			r.V[d.A&7][1] = r.V[d.B&7][1] ^ r.V[d.C&7][1]
		case isa.VMOVQ:
			r.V[d.A&7] = [2]uint64{g[d.B&15], 0}
		case isa.MOVQV:
			g[d.A&15] = r.V[d.B&7][0]

		// Loads and stores whose address hits a TLB head run here,
		// call-free; head misses (and everything else) return to the memop
		// tier. A head-hit store cannot advance the clock (WritePage never
		// hands out executable pages) and cannot fault, so no mid-run
		// checks are needed.
		case isa.LDQ:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift != rdPN || addr&pageMask > mem.PageSize-8 {
				return i, flags, wrapped
			}
			g[d.A&15] = binary.LittleEndian.Uint64(rdPg[addr&pageMask:])
		case isa.LDW:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift != rdPN || addr&pageMask > mem.PageSize-4 {
				return i, flags, wrapped
			}
			g[d.A&15] = uint64(binary.LittleEndian.Uint32(rdPg[addr&pageMask:]))
		case isa.LDH:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift != rdPN || addr&pageMask > mem.PageSize-2 {
				return i, flags, wrapped
			}
			g[d.A&15] = uint64(binary.LittleEndian.Uint16(rdPg[addr&pageMask:]))
		case isa.LDB:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift != rdPN {
				return i, flags, wrapped
			}
			g[d.A&15] = uint64(rdPg[addr&pageMask])
		case isa.LDSB:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift != rdPN {
				return i, flags, wrapped
			}
			g[d.A&15] = uint64(int64(int8(rdPg[addr&pageMask])))
		case isa.LDSH:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift != rdPN || addr&pageMask > mem.PageSize-2 {
				return i, flags, wrapped
			}
			g[d.A&15] = uint64(int64(int16(binary.LittleEndian.Uint16(rdPg[addr&pageMask:]))))
		case isa.LDSW:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift != rdPN || addr&pageMask > mem.PageSize-4 {
				return i, flags, wrapped
			}
			g[d.A&15] = uint64(int64(int32(binary.LittleEndian.Uint32(rdPg[addr&pageMask:]))))
		case isa.STQ:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift != wrPN || addr&pageMask > mem.PageSize-8 {
				return i, flags, wrapped
			}
			binary.LittleEndian.PutUint64(wrPg[addr&pageMask:], g[d.A&15])
		case isa.STW:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift != wrPN || addr&pageMask > mem.PageSize-4 {
				return i, flags, wrapped
			}
			binary.LittleEndian.PutUint32(wrPg[addr&pageMask:], uint32(g[d.A&15]))
		case isa.STH:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift != wrPN || addr&pageMask > mem.PageSize-2 {
				return i, flags, wrapped
			}
			binary.LittleEndian.PutUint16(wrPg[addr&pageMask:], uint16(g[d.A&15]))
		case isa.STB:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift != wrPN {
				return i, flags, wrapped
			}
			wrPg[addr&pageMask] = byte(g[d.A&15])
		case isa.PUSH, isa.PUSHF:
			v := g[d.A&15]
			if d.Op == isa.PUSHF {
				v = flags
			}
			sp := g[isa.RSP] - 8
			if sp>>mem.PageShift != wrPN || sp&pageMask > mem.PageSize-8 {
				return i, flags, wrapped
			}
			binary.LittleEndian.PutUint64(wrPg[sp&pageMask:], v)
			g[isa.RSP] = sp
		case isa.POP, isa.POPF:
			sp := g[isa.RSP]
			if sp>>mem.PageShift != rdPN || sp&pageMask > mem.PageSize-8 {
				return i, flags, wrapped
			}
			v := binary.LittleEndian.Uint64(rdPg[sp&pageMask:])
			g[isa.RSP] = sp + 8
			if d.Op == isa.POPF {
				flags = v & isa.FlagMask
			} else {
				g[d.A&15] = v
			}

		default:
			return i, flags, wrapped
		}
	}
	if wrapped < maxIters {
		// Loop mode: evaluate the backedge at sl[end] inline. attachRuns
		// only marks blocks whose terminator is a direct (conditional)
		// jump back to sl[0], so taken simply restarts the body. The
		// condition logic mirrors condTaken, written out here because the
		// compiler declines to inline it and a real call would cost this
		// leaf its registers.
		var taken bool
		switch sl[end].Op {
		case isa.JMP:
			taken = true
		case isa.JZ:
			taken = flags&isa.FlagZ != 0
		case isa.JNZ:
			taken = flags&isa.FlagZ == 0
		case isa.JL:
			taken = (flags&isa.FlagS != 0) != (flags&isa.FlagO != 0)
		case isa.JLE:
			taken = flags&isa.FlagZ != 0 || (flags&isa.FlagS != 0) != (flags&isa.FlagO != 0)
		case isa.JG:
			taken = flags&isa.FlagZ == 0 && (flags&isa.FlagS != 0) == (flags&isa.FlagO != 0)
		case isa.JGE:
			taken = (flags&isa.FlagS != 0) == (flags&isa.FlagO != 0)
		case isa.JB:
			taken = flags&isa.FlagC != 0
		case isa.JBE:
			taken = flags&(isa.FlagC|isa.FlagZ) != 0
		case isa.JA:
			taken = flags&(isa.FlagC|isa.FlagZ) == 0
		case isa.JAE:
			taken = flags&isa.FlagC == 0
		case isa.JS:
			taken = flags&isa.FlagS != 0
		case isa.JNS:
			taken = flags&isa.FlagS == 0
		}
		if taken {
			wrapped++
			i = 0
			if wrapped < maxIters {
				goto loop
			}
		}
	}
	return i, flags, wrapped
}

// execChain executes decoded blocks starting at blk, following chain links
// across block boundaries without returning to the dispatch loop. Hot
// state — PC, flags, the retired-instruction delta, and one read and one
// write TLB head — lives in locals and is spilled to the Thread exactly
// once, at chain exit: quantum/budget boundary, address-space clock
// change, stop request, fault, or an instruction only step can run. The
// bool result reports that last case — the instruction at t.Regs.PC (a
// syscall the inline path declined, or an unbatchable address) must be
// executed by Machine.step.
//
// Architectural effects commit per instruction in program order, so a
// fault or side exit leaves the thread exactly at the offending
// instruction with all prior effects applied — indistinguishable from the
// per-instruction path. The clock is re-checked after every retired
// instruction: a store into any executable page ends the chain before the
// next (possibly stale) cached instruction could run, which is what makes
// SMC that rewrites a *later* block of the current chain safe.
//
// The local TLB heads cache one readable and one writable page each
// (never executable ones, see chainStore); they stay coherent because
// page data is only ever mutated in place, and mapping changes can only
// happen inside syscalls, which always exit or re-enter the chain.
func (m *Machine) execChain(t *Thread, blk *dblock, budget int) (int, bool) {
	as := m.Proc.AS
	r := &t.Regs
	g := &r.GPR
	clock := as.Clock()
	pc := r.PC
	flags := r.Flags
	ran := 0
	i := 0
	needStep := false
	var fErr error
	var d *isa.DecInst
	var next uint64
	rdPN := ^uint64(0)
	wrPN := ^uint64(0)
	var rdPg, wrPg *[mem.PageSize]byte

	for {
		// Loop mode: a tight self-loop whose whole body is batchable runs
		// entire iterations inside runSeg, backedge included, bounded by the
		// remaining budget. On return the executor resumes per-instruction
		// at sl[i] — the op after the final complete iteration (budget slice
		// spent, i == 0), a TLB-head miss mid-body, or the not-taken
		// backedge (i == last) — so quantum, perf-counter, and side-exit
		// semantics are exactly those of per-instruction execution.
		if blk.loop && i == 0 && !m.DisableChaining {
			if iters := (budget - ran) / len(blk.ins); iters > 0 {
				var w int
				i, flags, w = runSeg(blk.ins, 0, len(blk.ins)-1, iters,
					g, flags, rdPN, wrPN, rdPg, wrPg, r)
				// w complete iterations plus the i leading ops of the final
				// partial one retired; sl[i] is the next op to execute.
				ran += w*len(blk.ins) + i
				pc = blk.spc[i]
				goto perins
			}
		}
		// Batch run: retire a straight-line run of batchable ops with the
		// budget and side-exit checks hoisted out of the loop. Nothing in a
		// run can branch or enter the scheduler, and the rare events that do
		// interrupt one (a fault, a declined syscall, a store that advances
		// the clock) carry exact recovery state, so batching is precisely
		// equivalent to per-instruction execution.
		if n := int(blk.run[i]); n >= segMin && ran+n <= budget {
			// start lets the rare bail-outs (fault, SMC store) reconstruct
			// the exact retired count mid-run.
			start := i
			end := i + n
			sl := blk.ins[:end]
		seg:
			// The register-only segment runs in runSeg, a call-free leaf
			// compiled with every hot value in a machine register. It stops
			// at the first op that needs memory help (TLB-head miss, stack
			// spill, ...), which the memop tier below handles before
			// re-entering the segment.
			if end-i >= segMin {
				i, flags, _ = runSeg(sl, i, end, 0, g, flags, rdPN, wrPN, rdPg, wrPg, r)
				if i < end {
					d = &sl[i]
					goto memop
				}
			} else if i < end {
				// Tail too short to amortize a runSeg call: account batch
				// progress and finish it on the per-instruction path.
				ran += i - start
				pc = blk.spc[i]
				goto perins
			}
			d = &sl[end-1]
			ran += n
			pc = d.Next
			if i < len(blk.ins) {
				continue
			}
			goto trans

		memop:
			// Memory tier of a run: loads, stores, and stack ops whose TLB
			// head missed, kept out of the segment loop above so its codegen
			// stays call-free.
			switch d.Op {
			case isa.LDQ:
				addr := g[d.B&15] + d.Imm
				if addr>>mem.PageShift == rdPN && addr&pageMask <= mem.PageSize-8 {
					g[d.A&15] = binary.LittleEndian.Uint64(rdPg[addr&pageMask:])
				} else {
					v, pg, err := chainLoad(as, addr, 8)
					if err != nil {
						fErr = err
						ran += i - start
						pc = blk.spc[i]
						goto fault
					}
					if pg != nil {
						rdPN, rdPg = addr>>mem.PageShift, pg
					}
					g[d.A&15] = v
				}
			case isa.LDW, isa.LDH, isa.LDB, isa.LDSB, isa.LDSH, isa.LDSW:
				addr := g[d.B&15] + d.Imm
				size := 1
				switch d.Op {
				case isa.LDW, isa.LDSW:
					size = 4
				case isa.LDH, isa.LDSH:
					size = 2
				}
				v, pg, err := chainLoad(as, addr, size)
				if err != nil {
					fErr = err
					ran += i - start
					pc = blk.spc[i]
					goto fault
				}
				if pg != nil {
					rdPN, rdPg = addr>>mem.PageShift, pg
				}
				switch d.Op {
				case isa.LDSB:
					v = uint64(int64(int8(v)))
				case isa.LDSH:
					v = uint64(int64(int16(v)))
				case isa.LDSW:
					v = uint64(int64(int32(v)))
				}
				g[d.A&15] = v

			case isa.STQ:
				addr := g[d.B&15] + d.Imm
				if addr>>mem.PageShift == wrPN && addr&pageMask <= mem.PageSize-8 {
					binary.LittleEndian.PutUint64(wrPg[addr&pageMask:], g[d.A&15])
				} else {
					pg, err := chainStore(as, addr, g[d.A&15], 8)
					if err != nil {
						fErr = err
						ran += i - start
						pc = blk.spc[i]
						goto fault
					}
					if pg != nil {
						// Head refill: WritePage vetted the page as
						// non-executable, so the clock cannot have moved.
						wrPN, wrPg = addr>>mem.PageShift, pg
					} else if as.Clock() != clock {
						ran += i - start + 1
						pc = d.Next
						goto out
					}
				}
			case isa.STW, isa.STH, isa.STB:
				addr := g[d.B&15] + d.Imm
				size := 1
				switch d.Op {
				case isa.STW:
					size = 4
				case isa.STH:
					size = 2
				}
				pg, err := chainStore(as, addr, g[d.A&15], size)
				if err != nil {
					fErr = err
					ran += i - start
					pc = blk.spc[i]
					goto fault
				}
				if pg != nil {
					wrPN, wrPg = addr>>mem.PageShift, pg
				} else if as.Clock() != clock {
					ran += i - start + 1
					pc = d.Next
					goto out
				}

			case isa.PUSH, isa.PUSHF:
				v := g[d.A&15]
				if d.Op == isa.PUSHF {
					v = flags
				}
				sp := g[isa.RSP] - 8
				if sp>>mem.PageShift == wrPN && sp&pageMask <= mem.PageSize-8 {
					binary.LittleEndian.PutUint64(wrPg[sp&pageMask:], v)
				} else {
					pg, err := chainStore(as, sp, v, 8)
					if err != nil {
						fErr = err
						ran += i - start
						pc = blk.spc[i]
						goto fault
					}
					if pg != nil {
						wrPN, wrPg = sp>>mem.PageShift, pg
					} else if as.Clock() != clock {
						g[isa.RSP] = sp
						ran += i - start + 1
						pc = d.Next
						goto out
					}
				}
				g[isa.RSP] = sp
			case isa.POP, isa.POPF:
				sp := g[isa.RSP]
				var v uint64
				if sp>>mem.PageShift == rdPN && sp&pageMask <= mem.PageSize-8 {
					v = binary.LittleEndian.Uint64(rdPg[sp&pageMask:])
				} else {
					lv, pg, err := chainLoad(as, sp, 8)
					if err != nil {
						fErr = err
						ran += i - start
						pc = blk.spc[i]
						goto fault
					}
					if pg != nil {
						rdPN, rdPg = sp>>mem.PageShift, pg
					}
					v = lv
				}
				g[isa.RSP] = sp + 8
				if d.Op == isa.POPF {
					flags = v & isa.FlagMask
				} else {
					g[d.A&15] = v
				}

			default:
				// batchOp admits nothing else; if the tiers ever drift,
				// fall back to the precise step path instead of silently
				// skipping the op.
				needStep = true
				ran += i - start
				pc = blk.spc[i]
				goto out
			}
			i++
			goto seg
		}
	perins:
		if ran >= budget {
			goto out
		}
		d = &blk.ins[i]
		next = d.Next

		switch d.Op {
		case isa.NOP, isa.FENCE, isa.SSCMARK, isa.MAGIC:
			// Markers are no-ops here: fastPathOK guarantees OnMarker is nil.

		case isa.MOV:
			g[d.A&15] = g[d.B&15]
		case isa.MOVI, isa.LIMM:
			g[d.A&15] = d.Imm

		case isa.ADD:
			g[d.A&15] = g[d.B&15] + g[d.C&15]
		case isa.SUB:
			g[d.A&15] = g[d.B&15] - g[d.C&15]
		case isa.MUL:
			g[d.A&15] = g[d.B&15] * g[d.C&15]
		case isa.UDIV:
			if g[d.C&15] == 0 {
				g[d.A&15] = ^uint64(0)
			} else {
				g[d.A&15] = g[d.B&15] / g[d.C&15]
			}
		case isa.SDIV:
			if g[d.C&15] == 0 {
				g[d.A&15] = ^uint64(0)
			} else {
				g[d.A&15] = uint64(int64(g[d.B&15]) / int64(g[d.C&15]))
			}
		case isa.UREM:
			if g[d.C&15] == 0 {
				g[d.A&15] = g[d.B&15]
			} else {
				g[d.A&15] = g[d.B&15] % g[d.C&15]
			}
		case isa.AND:
			g[d.A&15] = g[d.B&15] & g[d.C&15]
		case isa.OR:
			g[d.A&15] = g[d.B&15] | g[d.C&15]
		case isa.XOR:
			g[d.A&15] = g[d.B&15] ^ g[d.C&15]
		case isa.SHL:
			g[d.A&15] = g[d.B&15] << (g[d.C&15] & 63)
		case isa.SHR:
			g[d.A&15] = g[d.B&15] >> (g[d.C&15] & 63)
		case isa.SAR:
			g[d.A&15] = uint64(int64(g[d.B&15]) >> (g[d.C&15] & 63))
		case isa.NOT:
			g[d.A&15] = ^g[d.B&15]
		case isa.NEG:
			g[d.A&15] = -g[d.B&15]

		case isa.ADDI:
			g[d.A&15] = g[d.B&15] + d.Imm
		case isa.MULI:
			g[d.A&15] = g[d.B&15] * d.Imm
		case isa.ANDI:
			g[d.A&15] = g[d.B&15] & d.Imm
		case isa.ORI:
			g[d.A&15] = g[d.B&15] | d.Imm
		case isa.XORI:
			g[d.A&15] = g[d.B&15] ^ d.Imm
		case isa.SHLI:
			g[d.A&15] = g[d.B&15] << (d.Imm & 63)
		case isa.SHRI:
			g[d.A&15] = g[d.B&15] >> (d.Imm & 63)
		case isa.SARI:
			g[d.A&15] = uint64(int64(g[d.B&15]) >> (d.Imm & 63))

		case isa.LEA1:
			g[d.A&15] = g[d.B&15] + g[d.C&15] + d.Imm
		case isa.LEA8:
			g[d.A&15] = g[d.B&15] + g[d.C&15]*8 + d.Imm

		case isa.LDQ:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift == rdPN && addr&pageMask <= mem.PageSize-8 {
				g[d.A&15] = binary.LittleEndian.Uint64(rdPg[addr&pageMask:])
			} else {
				v, pg, err := chainLoad(as, addr, 8)
				if err != nil {
					fErr = err
					goto fault
				}
				if pg != nil {
					rdPN, rdPg = addr>>mem.PageShift, pg
				}
				g[d.A&15] = v
			}
		case isa.LDW, isa.LDH, isa.LDB, isa.LDSB, isa.LDSH, isa.LDSW:
			addr := g[d.B&15] + d.Imm
			size := 1
			switch d.Op {
			case isa.LDW, isa.LDSW:
				size = 4
			case isa.LDH, isa.LDSH:
				size = 2
			}
			v, pg, err := chainLoad(as, addr, size)
			if err != nil {
				fErr = err
				goto fault
			}
			if pg != nil {
				rdPN, rdPg = addr>>mem.PageShift, pg
			}
			switch d.Op {
			case isa.LDSB:
				v = uint64(int64(int8(v)))
			case isa.LDSH:
				v = uint64(int64(int16(v)))
			case isa.LDSW:
				v = uint64(int64(int32(v)))
			}
			g[d.A&15] = v

		case isa.STQ:
			addr := g[d.B&15] + d.Imm
			if addr>>mem.PageShift == wrPN && addr&pageMask <= mem.PageSize-8 {
				binary.LittleEndian.PutUint64(wrPg[addr&pageMask:], g[d.A&15])
			} else {
				pg, err := chainStore(as, addr, g[d.A&15], 8)
				if err != nil {
					fErr = err
					goto fault
				}
				if pg != nil {
					wrPN, wrPg = addr>>mem.PageShift, pg
				}
			}
			goto retireStore
		case isa.STW, isa.STH, isa.STB:
			addr := g[d.B&15] + d.Imm
			size := 1
			switch d.Op {
			case isa.STW:
				size = 4
			case isa.STH:
				size = 2
			}
			pg, err := chainStore(as, addr, g[d.A&15], size)
			if err != nil {
				fErr = err
				goto fault
			}
			if pg != nil {
				wrPN, wrPg = addr>>mem.PageShift, pg
			}
			goto retireStore

		case isa.CMP:
			flags = subFlags(g[d.B&15], g[d.C&15])
		case isa.CMPI:
			flags = subFlags(g[d.B&15], d.Imm)
		case isa.TEST:
			flags = logicFlags(g[d.B&15] & g[d.C&15])
		case isa.TESTI:
			flags = logicFlags(g[d.B&15] & d.Imm)

		case isa.JMP:
			next = d.Target
		case isa.JZ, isa.JNZ, isa.JL, isa.JLE, isa.JG, isa.JGE,
			isa.JB, isa.JBE, isa.JA, isa.JAE, isa.JS, isa.JNS:
			if condTaken(d.Op, flags) {
				next = d.Target
			}
		case isa.JMPR:
			next = g[d.B&15]
		case isa.JMPM:
			v, _, err := chainLoad(as, d.Target, 8)
			if err != nil {
				fErr = err
				goto fault
			}
			next = v
		case isa.CALL, isa.CALLR:
			target := d.Target
			if d.Op == isa.CALLR {
				target = g[d.B&15]
			}
			// Store before committing RSP so a stack fault leaves RSP
			// unchanged for the retry, as in step.
			sp := g[isa.RSP] - 8
			if sp>>mem.PageShift == wrPN && sp&pageMask <= mem.PageSize-8 {
				binary.LittleEndian.PutUint64(wrPg[sp&pageMask:], d.Next)
			} else {
				pg, err := chainStore(as, sp, d.Next, 8)
				if err != nil {
					fErr = err
					goto fault
				}
				if pg != nil {
					wrPN, wrPg = sp>>mem.PageShift, pg
				}
			}
			g[isa.RSP] = sp
			next = target
			goto retireStore
		case isa.RET:
			sp := g[isa.RSP]
			var v uint64
			if sp>>mem.PageShift == rdPN && sp&pageMask <= mem.PageSize-8 {
				v = binary.LittleEndian.Uint64(rdPg[sp&pageMask:])
			} else {
				lv, pg, err := chainLoad(as, sp, 8)
				if err != nil {
					fErr = err
					goto fault
				}
				if pg != nil {
					rdPN, rdPg = sp>>mem.PageShift, pg
				}
				v = lv
			}
			g[isa.RSP] = sp + 8
			next = v

		case isa.PUSH, isa.PUSHF:
			v := g[d.A&15]
			if d.Op == isa.PUSHF {
				v = flags
			}
			sp := g[isa.RSP] - 8
			if sp>>mem.PageShift == wrPN && sp&pageMask <= mem.PageSize-8 {
				binary.LittleEndian.PutUint64(wrPg[sp&pageMask:], v)
			} else {
				pg, err := chainStore(as, sp, v, 8)
				if err != nil {
					fErr = err
					goto fault
				}
				if pg != nil {
					wrPN, wrPg = sp>>mem.PageShift, pg
				}
			}
			g[isa.RSP] = sp
			goto retireStore
		case isa.POP, isa.POPF:
			sp := g[isa.RSP]
			var v uint64
			if sp>>mem.PageShift == rdPN && sp&pageMask <= mem.PageSize-8 {
				v = binary.LittleEndian.Uint64(rdPg[sp&pageMask:])
			} else {
				lv, pg, err := chainLoad(as, sp, 8)
				if err != nil {
					fErr = err
					goto fault
				}
				if pg != nil {
					rdPN, rdPg = sp>>mem.PageShift, pg
				}
				v = lv
			}
			g[isa.RSP] = sp + 8
			if d.Op == isa.POPF {
				flags = v & isa.FlagMask
			} else {
				g[d.A&15] = v
			}

		case isa.CPUID:
			g[d.A&15] = 0x50564d31
		case isa.RDTSC:
			g[d.A&15] = m.Kernel.Clock.Now(m.GlobalRetired + uint64(ran))

		case isa.SYSCALL:
			ret, ok := m.syscallInline(t, g[isa.R0])
			if !ok {
				needStep = true
				goto out
			}
			g[isa.R0] = ret

		case isa.XCHG:
			addr := g[d.B&15] + d.Imm
			old, _, err := chainLoad(as, addr, 8)
			if err != nil {
				fErr = err
				goto fault
			}
			if _, err := chainStore(as, addr, g[d.A&15], 8); err != nil {
				fErr = err
				goto fault
			}
			g[d.A&15] = old
			goto retireStore
		case isa.XADD:
			addr := g[d.B&15] + d.Imm
			old, _, err := chainLoad(as, addr, 8)
			if err != nil {
				fErr = err
				goto fault
			}
			if _, err := chainStore(as, addr, old+g[d.A&15], 8); err != nil {
				fErr = err
				goto fault
			}
			g[d.A&15] = old
			goto retireStore
		case isa.CMPXCHG:
			addr := g[d.B&15] + d.Imm
			old, _, err := chainLoad(as, addr, 8)
			if err != nil {
				fErr = err
				goto fault
			}
			if old == g[isa.R0] {
				if _, err := chainStore(as, addr, g[d.A&15], 8); err != nil {
					fErr = err
					goto fault
				}
				flags = isa.FlagZ
			} else {
				g[isa.R0] = old
				flags = 0
			}
			goto retireStore

		case isa.WRFSBASE:
			r.FSBase = g[d.A&15]
		case isa.RDFSBASE:
			g[d.A&15] = r.FSBase
		case isa.WRGSBASE:
			r.GSBase = g[d.A&15]
		case isa.RDGSBASE:
			g[d.A&15] = r.GSBase

		case isa.VLD:
			addr := g[d.B&15] + d.Imm
			var buf [16]byte
			if err := as.Read(addr, buf[:]); err != nil {
				fErr = err
				goto fault
			}
			r.V[d.A&7][0] = leBytes(buf[:8])
			r.V[d.A&7][1] = leBytes(buf[8:])
		case isa.VST:
			addr := g[d.B&15] + d.Imm
			var buf [16]byte
			putBytes(buf[:8], r.V[d.A&7][0])
			putBytes(buf[8:], r.V[d.A&7][1])
			if err := as.Write(addr, buf[:]); err != nil {
				fErr = err
				goto fault
			}
			goto retireStore
		case isa.VADDQ:
			r.V[d.A&7][0] = r.V[d.B&7][0] + r.V[d.C&7][0]
			r.V[d.A&7][1] = r.V[d.B&7][1] + r.V[d.C&7][1]
		case isa.VMULQ:
			r.V[d.A&7][0] = r.V[d.B&7][0] * r.V[d.C&7][0]
			r.V[d.A&7][1] = r.V[d.B&7][1] * r.V[d.C&7][1]
		case isa.VXOR:
			r.V[d.A&7][0] = r.V[d.B&7][0] ^ r.V[d.C&7][0]
			r.V[d.A&7][1] = r.V[d.B&7][1] ^ r.V[d.C&7][1]
		case isa.VMOVQ:
			r.V[d.A&7] = [2]uint64{g[d.B&15], 0}
		case isa.MOVQV:
			g[d.A&15] = r.V[d.B&7][0]

		default:
			// Deopt opcodes never reach a block (buildBlock truncates), but
			// stay safe: hand the instruction to step, which implements
			// every opcode.
			needStep = true
			goto out
		}

		// Fast retire for ops that cannot have advanced the page-generation
		// clock — everything except stores, which jump to retireStore below.
		pc = next
		ran++
		i++
		if i < len(blk.ins) && next == blk.spc[i] {
			continue
		}
		goto trans

	retireStore:
		pc = next
		ran++
		i++
		if as.Clock() != clock {
			// A store touched an executable page (or remapped memory):
			// everything cached — blocks, links, TLB heads — may be stale.
			goto out
		}
		if i < len(blk.ins) && next == blk.spc[i] {
			// Splice holds: fall through to the next cached instruction.
			// (Always true inside a basic block; in a superblock this is
			// the side-exit guard at every spliced boundary.)
			continue
		}

	trans:
		// Block/trace exit: transfer to next (== pc). Honour stop requests,
		// then follow — or re-establish — the chain link, recording the
		// observed successor for trace formation.
		if m.stopReq.Load() || m.DisableChaining {
			blk.lastNext = pc
			goto out
		}
		if pc == blk.spc[0] {
			// Tight self-loop backedge: re-enter this block directly. It is
			// still valid — a store that could have invalidated it would
			// have bailed through the clock check — and the budget is
			// re-checked at the loop top, so quantum and perf precision
			// hold. lastNext deliberately keeps the loop's *exit* successor
			// so trace formation splices the continuation, not the backedge.
			i = 0
			continue
		}
		blk.lastNext = pc
		{
			var nxt *dblock
			if blk.l0pc == pc {
				nxt = blk.l0
			} else if blk.l1pc == pc && blk.l1 != nil {
				blk.l0pc, blk.l0, blk.l1pc, blk.l1 = blk.l1pc, blk.l1, blk.l0pc, blk.l0
				nxt = blk.l0
			}
			if nxt == nil || nxt.okClock != clock ||
				(!nxt.superDone && nxt.heat > superThreshold) {
				// Link miss, severed link, or a hot target that deserves a
				// promotion attempt: resolve through the cache.
				nxt = m.lookupBlock(pc)
				if nxt == nil || len(nxt.ins) == 0 {
					goto out
				}
				if blk.l0pc != pc {
					blk.l1pc, blk.l1 = blk.l0pc, blk.l0
				}
				blk.l0pc, blk.l0 = pc, nxt
			} else if nxt.heat <= superThreshold {
				nxt.heat++
			}
			blk = nxt
			i = 0
		}
	}

out:
	r.PC = pc
	r.Flags = flags
	t.Retired += uint64(ran)
	m.GlobalRetired += uint64(ran)
	return ran, needStep

fault:
	r.PC = pc
	r.Flags = flags
	t.Retired += uint64(ran)
	m.GlobalRetired += uint64(ran)
	m.handleFault(t, fErr)
	return ran, false
}
