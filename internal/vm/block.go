package vm

import (
	"elfie/internal/isa"
	"elfie/internal/mem"
)

// This file implements the decoded basic-block fast path. When no
// per-instruction instrumentation is installed (elfierun replay, farm
// validation), the interpreter predecodes straight-line instruction runs
// into per-page blocks and executes them in a tight loop that skips the
// fetch/decode work of Machine.step.
//
// Soundness hinges on generation validation: blocks are keyed by
// (page number, page generation), and mem.AddrSpace gives a page a fresh
// generation whenever it is (re)mapped or — for executable pages — written.
// A block whose page generation no longer matches is unreachable and gets
// rebuilt; a store *during* a block batch is caught by re-checking the
// address-space clock after every retired instruction, so self-modifying
// code that rewrites its own block takes effect at the very next
// instruction, exactly as in the per-instruction path.

const (
	// maxBlockLen caps the instructions predecoded into one block.
	maxBlockLen = 128
	// maxCachedPages bounds the block cache; reaching it drops the whole
	// cache (simple, and effectively never hit by ELFie-sized regions).
	maxCachedPages = 4096
)

// dblock is one decoded basic block: a straight-line run ending at the
// first control-transfer instruction. An empty ins slice is the negative
// cache for addresses the fast path must not batch (deopt opcodes,
// page-straddling or undecodable words): the per-instruction path executes
// those with precise fault and hook semantics.
type dblock struct {
	ins []isa.DecInst
}

// pageBlocks holds the decoded blocks of one executable page at one
// generation.
type pageBlocks struct {
	gen    uint64
	blocks map[uint64]*dblock
}

// fastPathOK reports whether execution may use the block fast path. Any
// per-instruction observation hook forces the step path so hooks fire in
// order; SyscallFilter/OnSyscall/OnFault and the thread hooks are
// compatible with the fast path because blocks never contain syscalls and
// faults fall back to step semantics.
func (m *Machine) fastPathOK() bool {
	h := &m.Hooks
	return !m.DisableBlockCache && m.FaultInj == nil &&
		h.OnIns == nil && h.OnMemRead == nil && h.OnMemWrite == nil &&
		h.OnBranch == nil && h.OnMarker == nil
}

// deoptOp reports opcodes the block executor refuses to batch: they yield,
// halt, enter the kernel, or touch bulk state, and the step path already
// implements their exact semantics. The decision keys off the shared
// per-opcode effect metadata in internal/isa so the batching policy and the
// static verifier's instruction model cannot drift apart.
func deoptOp(o isa.Op) bool {
	switch isa.Determinism(o) {
	case isa.DetKernel, isa.DetControl:
		return true
	}
	return isa.BulkState(o)
}

// runThreadFast is the hook-free twin of runThread: execute cached blocks
// when possible, fall back to single steps at block boundaries the cache
// cannot cover (syscalls, faults, cross-page words).
func (m *Machine) runThreadFast(t *Thread, quantum int) int {
	ran := 0
	for ran < quantum && t.Alive && !m.Halted && !m.stopReq.Load() {
		blk := m.lookupBlock(t.Regs.PC)
		if blk == nil || len(blk.ins) == 0 {
			yielded, retired := m.step(t)
			if retired {
				ran++
			}
			if yielded {
				break
			}
			continue
		}
		n := m.execBlock(t, blk, m.blockBudget(t, quantum-ran))
		ran += n
		if m.checkPerfOverflow(t) {
			break
		}
	}
	return ran
}

// blockBudget bounds one block batch so no armed perf counter can overflow
// mid-batch: the overflow check after the batch then fires at exactly the
// same retired count as the per-instruction path.
func (m *Machine) blockBudget(t *Thread, quantum int) int {
	budget := quantum
	for _, p := range t.perf {
		if p.Fired {
			continue
		}
		left := p.Period - (t.Retired - p.base)
		if left < uint64(budget) {
			budget = int(left)
		}
	}
	return budget
}

// lookupBlock returns the decoded block starting at pc, building it on
// demand. nil means pc is not mapped executable (step will raise the
// fault); an empty block means "single-step this address".
func (m *Machine) lookupBlock(pc uint64) *dblock {
	as := m.Proc.AS
	gen, ok := as.ExecGen(pc)
	if !ok {
		return nil
	}
	pn := mem.PageNum(pc)
	pb := m.lastPB
	if pb == nil || m.lastPN != pn || pb.gen != gen {
		if m.bcache == nil {
			m.bcache = make(map[uint64]*pageBlocks)
		}
		pb = m.bcache[pn]
		if pb == nil || pb.gen != gen {
			if len(m.bcache) >= maxCachedPages {
				m.bcache = make(map[uint64]*pageBlocks)
			}
			pb = &pageBlocks{gen: gen, blocks: make(map[uint64]*dblock)}
			m.bcache[pn] = pb
		}
		m.lastPN, m.lastPB = pn, pb
	}
	blk := pb.blocks[pc]
	if blk == nil {
		blk = m.buildBlock(pc)
		pb.blocks[pc] = blk
	}
	return blk
}

// buildBlock predecodes the straight-line run at pc, truncating at the
// first deopt opcode. Blocks never span pages: the predecoder stops at the
// page's end, and a word straddling the boundary is simply left to step.
func (m *Machine) buildBlock(pc uint64) *dblock {
	win, _, err := m.Proc.AS.ExecWindow(pc)
	if err != nil {
		return &dblock{}
	}
	ins := isa.PredecodeBlock(win, pc, maxBlockLen)
	for i := range ins {
		if deoptOp(ins[i].Op) {
			ins = ins[:i]
			break
		}
	}
	return &dblock{ins: ins}
}

// loadMem reads size bytes at addr for the block executor: TLB fast path,
// then the general path. ok=false means the access faulted and was handed
// to handleFault — the caller ends the batch without retiring.
func (m *Machine) loadMem(t *Thread, addr uint64, size int) (uint64, bool) {
	as := m.Proc.AS
	if v, ok := as.LoadFast(addr, size); ok {
		return v, true
	}
	var buf [8]byte
	if err := as.Read(addr, buf[:size]); err != nil {
		m.handleFault(t, err)
		return 0, false
	}
	return leBytes(buf[:size]), true
}

// storeMem is the store twin of loadMem.
func (m *Machine) storeMem(t *Thread, addr, v uint64, size int) bool {
	as := m.Proc.AS
	if as.StoreFast(addr, v, size) {
		return true
	}
	var buf [8]byte
	putBytes(buf[:], v)
	if err := as.Write(addr, buf[:size]); err != nil {
		m.handleFault(t, err)
		return false
	}
	return true
}

// execBlock executes up to budget instructions of blk, returning how many
// retired. PC/Retired are committed per instruction, so a fault leaves the
// thread exactly at the faulting instruction with all prior effects
// applied — identical to the step path. A fault ends the batch after
// handleFault (retry re-enters via lookupBlock; fatal halts the machine).
// The address-space clock is re-checked after every instruction: a store
// that hits an executable page invalidates the rest of the batch.
func (m *Machine) execBlock(t *Thread, blk *dblock, budget int) int {
	as := m.Proc.AS
	r := &t.Regs
	g := &r.GPR
	clock := as.Clock()
	ran := 0
	for i := range blk.ins {
		if ran >= budget {
			break
		}
		d := &blk.ins[i]
		next := d.Next

		switch d.Op {
		case isa.NOP, isa.FENCE, isa.SSCMARK, isa.MAGIC:
			// Markers are no-ops here: fastPathOK guarantees OnMarker is nil.

		case isa.MOV:
			g[d.A&15] = g[d.B&15]
		case isa.MOVI, isa.LIMM:
			g[d.A&15] = d.Imm

		case isa.ADD:
			g[d.A&15] = g[d.B&15] + g[d.C&15]
		case isa.SUB:
			g[d.A&15] = g[d.B&15] - g[d.C&15]
		case isa.MUL:
			g[d.A&15] = g[d.B&15] * g[d.C&15]
		case isa.UDIV:
			if g[d.C&15] == 0 {
				g[d.A&15] = ^uint64(0)
			} else {
				g[d.A&15] = g[d.B&15] / g[d.C&15]
			}
		case isa.SDIV:
			if g[d.C&15] == 0 {
				g[d.A&15] = ^uint64(0)
			} else {
				g[d.A&15] = uint64(int64(g[d.B&15]) / int64(g[d.C&15]))
			}
		case isa.UREM:
			if g[d.C&15] == 0 {
				g[d.A&15] = g[d.B&15]
			} else {
				g[d.A&15] = g[d.B&15] % g[d.C&15]
			}
		case isa.AND:
			g[d.A&15] = g[d.B&15] & g[d.C&15]
		case isa.OR:
			g[d.A&15] = g[d.B&15] | g[d.C&15]
		case isa.XOR:
			g[d.A&15] = g[d.B&15] ^ g[d.C&15]
		case isa.SHL:
			g[d.A&15] = g[d.B&15] << (g[d.C&15] & 63)
		case isa.SHR:
			g[d.A&15] = g[d.B&15] >> (g[d.C&15] & 63)
		case isa.SAR:
			g[d.A&15] = uint64(int64(g[d.B&15]) >> (g[d.C&15] & 63))
		case isa.NOT:
			g[d.A&15] = ^g[d.B&15]
		case isa.NEG:
			g[d.A&15] = -g[d.B&15]

		case isa.ADDI:
			g[d.A&15] = g[d.B&15] + d.Imm
		case isa.MULI:
			g[d.A&15] = g[d.B&15] * d.Imm
		case isa.ANDI:
			g[d.A&15] = g[d.B&15] & d.Imm
		case isa.ORI:
			g[d.A&15] = g[d.B&15] | d.Imm
		case isa.XORI:
			g[d.A&15] = g[d.B&15] ^ d.Imm
		case isa.SHLI:
			g[d.A&15] = g[d.B&15] << (d.Imm & 63)
		case isa.SHRI:
			g[d.A&15] = g[d.B&15] >> (d.Imm & 63)
		case isa.SARI:
			g[d.A&15] = uint64(int64(g[d.B&15]) >> (d.Imm & 63))

		case isa.LEA1:
			g[d.A&15] = g[d.B&15] + g[d.C&15] + d.Imm
		case isa.LEA8:
			g[d.A&15] = g[d.B&15] + g[d.C&15]*8 + d.Imm

		case isa.LDQ:
			v, ok := m.loadMem(t, g[d.B&15]+d.Imm, 8)
			if !ok {
				return ran
			}
			g[d.A&15] = v
		case isa.LDW:
			v, ok := m.loadMem(t, g[d.B&15]+d.Imm, 4)
			if !ok {
				return ran
			}
			g[d.A&15] = v
		case isa.LDH:
			v, ok := m.loadMem(t, g[d.B&15]+d.Imm, 2)
			if !ok {
				return ran
			}
			g[d.A&15] = v
		case isa.LDB:
			v, ok := m.loadMem(t, g[d.B&15]+d.Imm, 1)
			if !ok {
				return ran
			}
			g[d.A&15] = v
		case isa.LDSB:
			v, ok := m.loadMem(t, g[d.B&15]+d.Imm, 1)
			if !ok {
				return ran
			}
			g[d.A&15] = uint64(int64(int8(v)))
		case isa.LDSH:
			v, ok := m.loadMem(t, g[d.B&15]+d.Imm, 2)
			if !ok {
				return ran
			}
			g[d.A&15] = uint64(int64(int16(v)))
		case isa.LDSW:
			v, ok := m.loadMem(t, g[d.B&15]+d.Imm, 4)
			if !ok {
				return ran
			}
			g[d.A&15] = uint64(int64(int32(v)))

		case isa.STQ:
			if !m.storeMem(t, g[d.B&15]+d.Imm, g[d.A&15], 8) {
				return ran
			}
		case isa.STW:
			if !m.storeMem(t, g[d.B&15]+d.Imm, g[d.A&15], 4) {
				return ran
			}
		case isa.STH:
			if !m.storeMem(t, g[d.B&15]+d.Imm, g[d.A&15], 2) {
				return ran
			}
		case isa.STB:
			if !m.storeMem(t, g[d.B&15]+d.Imm, g[d.A&15], 1) {
				return ran
			}

		case isa.CMP:
			r.Flags = subFlags(g[d.B&15], g[d.C&15])
		case isa.CMPI:
			r.Flags = subFlags(g[d.B&15], d.Imm)
		case isa.TEST:
			r.Flags = logicFlags(g[d.B&15] & g[d.C&15])
		case isa.TESTI:
			r.Flags = logicFlags(g[d.B&15] & d.Imm)

		case isa.JMP:
			next = d.Target
		case isa.JZ, isa.JNZ, isa.JL, isa.JLE, isa.JG, isa.JGE,
			isa.JB, isa.JBE, isa.JA, isa.JAE, isa.JS, isa.JNS:
			if condTaken(d.Op, r.Flags) {
				next = d.Target
			}
		case isa.JMPR:
			next = g[d.B&15]
		case isa.JMPM:
			v, ok := m.loadMem(t, d.Target, 8)
			if !ok {
				return ran
			}
			next = v
		case isa.CALL, isa.CALLR:
			target := d.Target
			if d.Op == isa.CALLR {
				target = g[d.B&15]
			}
			// Store before committing RSP so a stack fault leaves RSP
			// unchanged for the retry, as in step.
			sp := g[isa.RSP] - 8
			if !m.storeMem(t, sp, d.Next, 8) {
				return ran
			}
			g[isa.RSP] = sp
			next = target
		case isa.RET:
			v, ok := m.loadMem(t, g[isa.RSP], 8)
			if !ok {
				return ran
			}
			g[isa.RSP] += 8
			next = v

		case isa.PUSH, isa.PUSHF:
			v := g[d.A&15]
			if d.Op == isa.PUSHF {
				v = r.Flags
			}
			sp := g[isa.RSP] - 8
			if !m.storeMem(t, sp, v, 8) {
				return ran
			}
			g[isa.RSP] = sp
		case isa.POP, isa.POPF:
			v, ok := m.loadMem(t, g[isa.RSP], 8)
			if !ok {
				return ran
			}
			g[isa.RSP] += 8
			if d.Op == isa.POPF {
				r.Flags = v & isa.FlagMask
			} else {
				g[d.A&15] = v
			}

		case isa.CPUID:
			g[d.A&15] = 0x50564d31
		case isa.RDTSC:
			g[d.A&15] = m.Kernel.Clock.Now(m.GlobalRetired)

		case isa.XCHG:
			addr := g[d.B&15] + d.Imm
			old, ok := m.loadMem(t, addr, 8)
			if !ok {
				return ran
			}
			if !m.storeMem(t, addr, g[d.A&15], 8) {
				return ran
			}
			g[d.A&15] = old
		case isa.XADD:
			addr := g[d.B&15] + d.Imm
			old, ok := m.loadMem(t, addr, 8)
			if !ok {
				return ran
			}
			if !m.storeMem(t, addr, old+g[d.A&15], 8) {
				return ran
			}
			g[d.A&15] = old
		case isa.CMPXCHG:
			addr := g[d.B&15] + d.Imm
			old, ok := m.loadMem(t, addr, 8)
			if !ok {
				return ran
			}
			if old == g[isa.R0] {
				if !m.storeMem(t, addr, g[d.A&15], 8) {
					return ran
				}
				r.Flags = isa.FlagZ
			} else {
				g[isa.R0] = old
				r.Flags = 0
			}

		case isa.WRFSBASE:
			r.FSBase = g[d.A&15]
		case isa.RDFSBASE:
			g[d.A&15] = r.FSBase
		case isa.WRGSBASE:
			r.GSBase = g[d.A&15]
		case isa.RDGSBASE:
			g[d.A&15] = r.GSBase

		case isa.VLD:
			addr := g[d.B&15] + d.Imm
			var buf [16]byte
			if err := as.Read(addr, buf[:]); err != nil {
				m.handleFault(t, err)
				return ran
			}
			r.V[d.A&7][0] = leBytes(buf[:8])
			r.V[d.A&7][1] = leBytes(buf[8:])
		case isa.VST:
			addr := g[d.B&15] + d.Imm
			var buf [16]byte
			putBytes(buf[:8], r.V[d.A&7][0])
			putBytes(buf[8:], r.V[d.A&7][1])
			if err := as.Write(addr, buf[:]); err != nil {
				m.handleFault(t, err)
				return ran
			}
		case isa.VADDQ:
			r.V[d.A&7][0] = r.V[d.B&7][0] + r.V[d.C&7][0]
			r.V[d.A&7][1] = r.V[d.B&7][1] + r.V[d.C&7][1]
		case isa.VMULQ:
			r.V[d.A&7][0] = r.V[d.B&7][0] * r.V[d.C&7][0]
			r.V[d.A&7][1] = r.V[d.B&7][1] * r.V[d.C&7][1]
		case isa.VXOR:
			r.V[d.A&7][0] = r.V[d.B&7][0] ^ r.V[d.C&7][0]
			r.V[d.A&7][1] = r.V[d.B&7][1] ^ r.V[d.C&7][1]
		case isa.VMOVQ:
			r.V[d.A&7] = [2]uint64{g[d.B&15], 0}
		case isa.MOVQV:
			g[d.A&15] = r.V[d.B&7][0]

		default:
			// Deopt opcodes never reach a block (buildBlock truncates), but
			// stay safe: hand the instruction to step via the empty-batch
			// exit without retiring anything here.
			return ran
		}

		r.PC = next
		t.Retired++
		m.GlobalRetired++
		ran++

		if as.Clock() != clock {
			// A store touched an executable page (or remapped memory):
			// the rest of this batch may be stale. Re-validate.
			return ran
		}
	}
	return ran
}
