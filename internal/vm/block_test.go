package vm

import (
	"testing"

	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/mem"
)

// rawMachine maps code at base with the given protection and returns a
// machine with one thread whose PC starts at start.
func rawMachine(code []byte, base, start uint64, prot int) (*Machine, *Thread) {
	k := kernel.New(kernel.NewFS(), 1)
	proc := kernel.NewProcess(k.FS)
	proc.AS.Map(base, uint64(len(code))+2*mem.PageSize, prot)
	proc.AS.WriteNoFault(base, code)
	m := New(k, proc)
	th := m.AddThread(isa.RegFile{PC: start})
	m.MaxInstructions = 100_000
	return m, th
}

func enc(insts ...isa.Inst) []byte {
	var code []byte
	for _, i := range insts {
		code = i.Encode(code)
	}
	return code
}

// leWord converts an encoded 8-byte instruction to the uint64 a st.q would
// write over it.
func leWord(i isa.Inst) uint64 {
	b := i.Encode(nil)
	var v uint64
	for j := 7; j >= 0; j-- {
		v = v<<8 | uint64(b[j])
	}
	return v
}

// An 8-byte instruction straddling a page boundary must execute on both
// paths: the block cache refuses to predecode it (blocks never span pages)
// and hands it to the per-instruction path.
func TestCrossPageFetch(t *testing.T) {
	for _, disable := range []bool{false, true} {
		code := enc(
			isa.Inst{Op: isa.MOVI, A: 1, Imm: 7}, // at 0x1ffc: 4 bytes in each page
			isa.Inst{Op: isa.HLT},
		)
		m, th := rawMachine(code, 0x1000, 0x1ffc, mem.ProtRX)
		m.Proc.AS.WriteNoFault(0x1ffc, code) // place at the straddling address
		m.DisableBlockCache = disable
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if th.Regs.GPR[1] != 7 {
			t.Errorf("disable=%v: r1 = %d, want 7", disable, th.Regs.GPR[1])
		}
		if !m.Halted || th.Retired != 2 {
			t.Errorf("disable=%v: halted=%v retired=%d", disable, m.Halted, th.Retired)
		}
	}
}

// A LIMM whose instruction word sits at the end of one page with the 64-bit
// payload on the next page.
func TestCrossPageLimm(t *testing.T) {
	for _, disable := range []bool{false, true} {
		code := enc(
			isa.Inst{Op: isa.LIMM, A: 2, Imm64: 0xfeedfacecafe}, // word at 0x1ff8, payload at 0x2000
			isa.Inst{Op: isa.HLT},
		)
		m, th := rawMachine(code, 0x1000, 0x1ff8, mem.ProtRX)
		m.Proc.AS.WriteNoFault(0x1ff8, code)
		m.DisableBlockCache = disable
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if th.Regs.GPR[2] != 0xfeedfacecafe {
			t.Errorf("disable=%v: r2 = %#x", disable, th.Regs.GPR[2])
		}
	}
}

// Self-modifying code: a store rewrites an instruction *later in the same
// straight-line block*. The block executor must notice the generation bump
// mid-batch and execute the new bytes — same as the per-instruction path.
func TestSelfModifyingCode(t *testing.T) {
	newIns := isa.Inst{Op: isa.MOVI, A: 3, Imm: 42}
	for _, disable := range []bool{false, true} {
		code := enc(
			isa.Inst{Op: isa.LIMM, A: 1, Imm64: 0x1030},         // r1 = &target
			isa.Inst{Op: isa.LIMM, A: 2, Imm64: leWord(newIns)}, // r2 = new instruction word
			isa.Inst{Op: isa.STQ, A: 2, B: 1},                   // overwrite target
			isa.Inst{Op: isa.NOP},                               // 0x1028
			isa.Inst{Op: isa.MOVI, A: 3, Imm: 1},                // 0x1030: target (stale value 1)
			isa.Inst{Op: isa.HLT},                               // 0x1038
		)
		m, th := rawMachine(code, 0x1000, 0x1000, mem.ProtRWX)
		m.DisableBlockCache = disable
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if th.Regs.GPR[3] != 42 {
			t.Errorf("disable=%v: executed stale instruction, r3 = %d, want 42",
				disable, th.Regs.GPR[3])
		}
		if th.Retired != 6 {
			t.Errorf("disable=%v: retired = %d, want 6", disable, th.Retired)
		}
	}
}

// Unmap + Map at the same address across two runs of the same machine: the
// block cached during the first run must not serve the old code.
func TestRemapInvalidation(t *testing.T) {
	code1 := enc(isa.Inst{Op: isa.MOVI, A: 5, Imm: 1}, isa.Inst{Op: isa.HLT})
	m, th := rawMachine(code1, 0x1000, 0x1000, mem.ProtRX)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Regs.GPR[5] != 1 {
		t.Fatalf("first run: r5 = %d", th.Regs.GPR[5])
	}

	// Recycle the page: unmap, remap at the same address, new code.
	as := m.Proc.AS
	as.Unmap(0x1000, mem.PageSize)
	as.Map(0x1000, mem.PageSize, mem.ProtRX)
	code2 := enc(isa.Inst{Op: isa.MOVI, A: 5, Imm: 99}, isa.Inst{Op: isa.HLT})
	as.WriteNoFault(0x1000, code2)

	m.Halted = false
	th.Alive = true
	th.Regs.PC = 0x1000
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Regs.GPR[5] != 99 {
		t.Errorf("stale block survived remap: r5 = %d, want 99", th.Regs.GPR[5])
	}
}

// fastPathOK: per-instruction observation hooks force the step path;
// syscall/fault/thread hooks are fast-path compatible.
func TestFastPathSelection(t *testing.T) {
	m := &Machine{}
	if !m.fastPathOK() {
		t.Error("bare machine not fast-path eligible")
	}
	m.Hooks.SyscallFilter = func(*Thread, uint64) (kernel.Result, bool) { return kernel.Result{}, false }
	m.Hooks.OnFault = func(*Thread, *mem.Fault) bool { return false }
	m.Hooks.OnThreadStart = func(*Thread) {}
	if !m.fastPathOK() {
		t.Error("syscall/fault/thread hooks must not disable the fast path")
	}
	m.Hooks.OnIns = func(*Thread, uint64, isa.Inst) {}
	if m.fastPathOK() {
		t.Error("OnIns must disable the fast path")
	}
	m.Hooks.OnIns = nil
	m.Hooks.OnMemRead = func(*Thread, uint64, int) {}
	if m.fastPathOK() {
		t.Error("OnMemRead must disable the fast path")
	}
	m.Hooks.OnMemRead = nil
	m.DisableBlockCache = true
	if m.fastPathOK() {
		t.Error("DisableBlockCache must disable the fast path")
	}
}

// The block executor and the step path must retire the identical stream on
// a branchy, memory-heavy, syscall-using program: same registers, retired
// counts, output, and exit status.
func TestBlockStepEquivalence(t *testing.T) {
	src := `
		.text
		.global _start
_start:
		movi r1, 0        # i
		movi r2, 0        # sum
		limm r6, buf
loop:
		addi r1, r1, 1
		add  r2, r2, r1
		st.q r2, [r6]
		ld.q r3, [r6]
		push r3
		pop  r4
		cmpi r1, 500
		jnz  loop
		movi r0, 1        # write
		movi r1, 1
		limm r2, msg
		movi r3, 3
		syscall
		movi r0, 231      # exit_group
		movi r1, 7
		syscall
		.data
msg:	.ascii "ok\n"
buf:	.quad 0
	`
	fast := run(t, src, 1)
	slow := load(t, src, 1)
	slow.DisableBlockCache = true
	if err := slow.Run(); err != nil {
		t.Fatal(err)
	}
	if fast.GlobalRetired != slow.GlobalRetired {
		t.Errorf("retired: fast %d, slow %d", fast.GlobalRetired, slow.GlobalRetired)
	}
	if fast.ExitStatus != slow.ExitStatus || fast.ExitStatus != 7 {
		t.Errorf("exit: fast %d, slow %d", fast.ExitStatus, slow.ExitStatus)
	}
	if string(fast.Stdout()) != "ok\n" || string(slow.Stdout()) != "ok\n" {
		t.Errorf("stdout: fast %q slow %q", fast.Stdout(), slow.Stdout())
	}
	ff, sf := fast.Threads[0].Regs, slow.Threads[0].Regs
	if ff.GPR != sf.GPR || ff.Flags != sf.Flags {
		t.Errorf("final registers differ:\nfast %v\nslow %v", ff.GPR, sf.GPR)
	}
}

// A perf counter armed mid-run must overflow at the exact same retired
// count on the block path as on the step path (the graceful-exit contract).
func TestBlockPerfCounterPrecision(t *testing.T) {
	src := `
		.text
		.global _start
_start:
		movi r0, 298      # perf_event_open
		limm r1, attr
		syscall
loop:
		addi r5, r5, 1
		jmp  loop
		.data
attr:
		.quad 1000        # period
		.quad 0           # handler
		.quad 1           # flags: exit on overflow
	`
	for _, disable := range []bool{false, true} {
		m := load(t, src, 1)
		m.DisableBlockCache = disable
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		got := m.Threads[0].Retired
		if disable {
			continue
		}
		slow := load(t, src, 1)
		slow.DisableBlockCache = true
		if err := slow.Run(); err != nil {
			t.Fatal(err)
		}
		if got != slow.Threads[0].Retired {
			t.Errorf("overflow point differs: fast %d, slow %d", got, slow.Threads[0].Retired)
		}
	}
}

// encAt encodes instructions into code at byte offset off. Used by the
// chain-invalidation tests to lay blocks out at explicit addresses so
// PC-relative branch offsets can be written directly.
func encAt(code []byte, off int, insts ...isa.Inst) {
	var b []byte
	for _, i := range insts {
		b = i.Encode(b)
	}
	copy(code[off:], b)
}

// A store that rewrites an instruction inside an already-linked successor
// block must take effect at the very next execution of that instruction:
// the store advances the page-generation clock, which severs every chain
// link before the stale cached successor could run.
//
// Layout (base 0x1000): pass 1 runs start -> bridge -> victim and loops,
// forming the chain links and caching the victim block. Pass 2 takes the
// patch path, whose store rewrites the victim's first instruction, then
// jumps to the (now stale) victim block.
func TestSMCChainedSuccessor(t *testing.T) {
	newIns := isa.Inst{Op: isa.MOVI, A: 3, Imm: 42}
	code := make([]byte, 0x80)
	encAt(code, 0x00, // 0x1000
		isa.Inst{Op: isa.LIMM, A: 1, Imm64: 0x1060},         // r1 = &victim
		isa.Inst{Op: isa.LIMM, A: 2, Imm64: leWord(newIns)}) // r2 = patched word
	encAt(code, 0x20, // start: 0x1020
		isa.Inst{Op: isa.ADDI, A: 9, B: 9, Imm: 1},
		isa.Inst{Op: isa.CMPI, B: 9, Imm: 2},
		isa.Inst{Op: isa.JZ, Imm: 0x10}) // -> patch (0x1048)
	encAt(code, 0x38, // bridge: 0x1038
		isa.Inst{Op: isa.NOP},
		isa.Inst{Op: isa.JMP, Imm: 0x10}) // -> victim block (0x1058)
	encAt(code, 0x48, // patch: 0x1048
		isa.Inst{Op: isa.STQ, A: 2, B: 1}, // rewrite victim instruction
		isa.Inst{Op: isa.JMP, Imm: 0x00})  // -> victim block (0x1058)
	encAt(code, 0x58, // victim block: 0x1058
		isa.Inst{Op: isa.NOP},
		isa.Inst{Op: isa.MOVI, A: 3, Imm: 1}, // 0x1060: victim (stale value 1)
		isa.Inst{Op: isa.CMPI, B: 9, Imm: 2},
		isa.Inst{Op: isa.JNZ, Imm: -0x58}, // -> start
		isa.Inst{Op: isa.HLT})

	var retired [3]uint64
	for mode := 0; mode < 3; mode++ {
		m, th := rawMachine(code, 0x1000, 0x1000, mem.ProtRWX)
		switch mode {
		case 1:
			m.DisableChaining = true
		case 2:
			m.DisableBlockCache = true
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if th.Regs.GPR[3] != 42 {
			t.Errorf("mode %d: stale linked successor executed: r3 = %d, want 42",
				mode, th.Regs.GPR[3])
		}
		retired[mode] = th.Retired
	}
	if retired[0] != retired[2] || retired[1] != retired[2] {
		t.Errorf("retired diverges across modes: chained %d, unchained %d, step %d",
			retired[0], retired[1], retired[2])
	}
}

// smcSuperblockCode builds the mid-superblock SMC workload: a three-block
// loop hot enough to be spliced into a superblock, which then (patch mode)
// rewrites an instruction in a later constituent of the trace from inside
// it. patchAt is the iteration that takes the store path; pass a value
// beyond exitAt to build the never-patching variant.
func smcSuperblockCode(patchAt, exitAt int32) []byte {
	newIns := isa.Inst{Op: isa.MOVI, A: 3, Imm: 42}
	code := make([]byte, 0x78)
	encAt(code, 0x00, // 0x1000
		isa.Inst{Op: isa.LIMM, A: 1, Imm64: 0x1058},         // r1 = &victim
		isa.Inst{Op: isa.LIMM, A: 2, Imm64: leWord(newIns)}) // r2 = patched word
	encAt(code, 0x20, // loop: 0x1020
		isa.Inst{Op: isa.ADDI, A: 9, B: 9, Imm: 1},
		isa.Inst{Op: isa.CMPI, B: 9, Imm: patchAt},
		isa.Inst{Op: isa.JNZ, Imm: 0x08}) // -> skip (0x1040)
	encAt(code, 0x38, // patch path: 0x1038
		isa.Inst{Op: isa.STQ, A: 2, B: 1}) // rewrite victim, fall through
	encAt(code, 0x40, // skip: 0x1040
		isa.Inst{Op: isa.NOP},
		isa.Inst{Op: isa.JMP, Imm: 0x00}) // -> vb (0x1050): a hot chain edge
	encAt(code, 0x50, // vb: 0x1050
		isa.Inst{Op: isa.NOP},
		isa.Inst{Op: isa.MOVI, A: 3, Imm: 1}, // 0x1058: victim (stale value 1)
		isa.Inst{Op: isa.CMPI, B: 9, Imm: exitAt},
		isa.Inst{Op: isa.JNZ, Imm: -0x50}, // -> loop
		isa.Inst{Op: isa.HLT})
	return code
}

// A store that lands mid-superblock — rewriting an instruction in a later
// constituent of the very trace being executed — must take effect before
// that instruction runs again. First pins that the workload really does
// form a cross-branch superblock containing the victim, then checks the
// patched run against the per-instruction path.
func TestSMCMidSuperblock(t *testing.T) {
	// Formation guard: no patch, enough iterations to cross superThreshold.
	m, _ := rawMachine(smcSuperblockCode(1000, 100), 0x1000, 0x1000, mem.ProtRWX)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	spliced := false
	for _, pb := range m.bcache {
		for _, b := range pb.blocks {
			for j, pc := range b.spc {
				if j > 0 && pc == 0x1058 {
					spliced = true
				}
			}
		}
	}
	if !spliced {
		t.Fatal("workload did not splice the victim into a superblock; " +
			"the patched run below would not exercise mid-trace SMC")
	}

	code := smcSuperblockCode(50, 60)
	fast, ft := rawMachine(code, 0x1000, 0x1000, mem.ProtRWX)
	if err := fast.Run(); err != nil {
		t.Fatal(err)
	}
	slow, st := rawMachine(code, 0x1000, 0x1000, mem.ProtRWX)
	slow.DisableBlockCache = true
	if err := slow.Run(); err != nil {
		t.Fatal(err)
	}
	if ft.Regs.GPR[3] != 42 {
		t.Errorf("stale mid-superblock instruction executed: r3 = %d, want 42", ft.Regs.GPR[3])
	}
	if ft.Retired != st.Retired || ft.Regs.GPR != st.Regs.GPR {
		t.Errorf("patched run diverges from step path: retired %d vs %d\nfast %v\nslow %v",
			ft.Retired, st.Retired, ft.Regs.GPR, st.Regs.GPR)
	}
}

// Eviction under a tiny cache capacity: code hopping across four pages
// with room for only two keeps executing correctly — links to evicted
// blocks self-heal through lookupBlock — and the cache stays bounded.
func TestChainEvictionBounded(t *testing.T) {
	const pages = 4
	code := make([]byte, pages*mem.PageSize)
	for p := 0; p < pages-1; p++ {
		encAt(code, p*mem.PageSize,
			isa.Inst{Op: isa.ADDI, A: 9, B: 9, Imm: 1},
			isa.Inst{Op: isa.JMP, Imm: int32(mem.PageSize - 16)}) // -> next page
	}
	last := (pages - 1) * mem.PageSize
	encAt(code, last,
		isa.Inst{Op: isa.ADDI, A: 9, B: 9, Imm: 1},
		isa.Inst{Op: isa.CMPI, B: 9, Imm: 100 * pages},
		isa.Inst{Op: isa.JZ, Imm: 0x08},                   // -> done
		isa.Inst{Op: isa.JMP, Imm: int32(-(last + 0x20))}, // -> page 0
		isa.Inst{Op: isa.HLT})                             // done

	fast, ft := rawMachine(code, 0x10000, 0x10000, mem.ProtRX)
	fast.cacheCap = 2
	if err := fast.Run(); err != nil {
		t.Fatal(err)
	}
	slow, st := rawMachine(code, 0x10000, 0x10000, mem.ProtRX)
	slow.DisableBlockCache = true
	if err := slow.Run(); err != nil {
		t.Fatal(err)
	}
	if ft.Regs.GPR[9] != 100*pages {
		t.Errorf("r9 = %d, want %d", ft.Regs.GPR[9], 100*pages)
	}
	if ft.Retired != st.Retired || ft.Regs.GPR != st.Regs.GPR {
		t.Errorf("eviction run diverges from step path: retired %d vs %d",
			ft.Retired, st.Retired)
	}
	if len(fast.bcache) > 2 {
		t.Errorf("cache holds %d pages, capacity 2", len(fast.bcache))
	}
}
