// Package fault is a seeded, deterministic fault-injection framework for
// the checkpoint pipeline. A Plan describes *what* to break (rules bound to
// named injection points); an Injector evaluates the rules at run time.
//
// Injection points are wired into three layers:
//
//   - internal/kernel: system-call error returns, short reads/writes,
//     mmap/brk exhaustion (Kernel.Fault);
//   - internal/pinball: truncation and bit-flips applied to checkpoint
//     files as they are read (pinball.ReadOptions.Fault);
//   - internal/vm: forced page faults and ungraceful exits at a chosen
//     retired-instruction count (Machine.FaultInj).
//
// Every consumer treats a nil *Injector as "injection off", so the zero
// configuration adds a single nil check and nothing else. All randomness
// comes from Plan.Seed, so a plan replays identically run to run: the same
// calls trigger the same faults in the same order.
package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// Point names one injection point.
type Point string

// Injection points.
const (
	// SyscallError makes a matching system call return Rule.Errno without
	// executing.
	SyscallError Point = "syscall-error"
	// ShortRead truncates the byte count of a read() before it completes.
	ShortRead Point = "short-read"
	// ShortWrite truncates the byte count of a write() before it completes.
	ShortWrite Point = "short-write"
	// MmapExhaust makes an anonymous mmap() fail with ENOMEM.
	MmapExhaust Point = "mmap-exhaust"
	// BrkExhaust makes a growing brk() refuse to move the break.
	BrkExhaust Point = "brk-exhaust"
	// PinballTruncate drops the tail of a pinball file as it is read.
	PinballTruncate Point = "pinball-truncate"
	// PinballBitflip flips one bit of a pinball file as it is read.
	PinballBitflip Point = "pinball-bitflip"
	// ElfieBitflip flips one bit of an opcode byte inside a generated
	// ELFie's restore stub after conversion — the defect class the static
	// verifier (internal/elflint) exists to catch before anything runs.
	ElfieBitflip Point = "elfie-bitflip"
	// PageFault raises a synthetic page fault at Rule.AtRetired retired
	// instructions (recoverable by a vm.Hooks.OnFault handler).
	PageFault Point = "page-fault"
	// UngracefulExit kills the process at Rule.AtRetired retired
	// instructions — the divergent-ELFie death the paper's §I describes.
	UngracefulExit Point = "ungraceful-exit"
)

// Rule arms one injection point. Zero fields mean "no restriction":
// a rule with only Point set fires on every eligible trigger.
type Rule struct {
	Point Point `json:"point"`
	// Syscall restricts syscall-targeted points to one syscall number;
	// nil matches any call.
	Syscall *uint64 `json:"syscall,omitempty"`
	// Errno is the error returned by SyscallError injections (default EIO=5).
	Errno int `json:"errno,omitempty"`
	// After skips the first N eligible triggers before injecting.
	After uint64 `json:"after,omitempty"`
	// Count caps the number of injections this rule performs.
	// 0 means unlimited, except for the one-shot VM points (PageFault,
	// UngracefulExit) where 0 means 1.
	Count uint64 `json:"count,omitempty"`
	// Prob injects with this probability per eligible trigger (0 => always).
	Prob float64 `json:"prob,omitempty"`
	// AtRetired is the machine-wide retired-instruction count at which the
	// VM points trigger.
	AtRetired uint64 `json:"at_retired,omitempty"`
	// File restricts pinball points to files whose name contains this
	// substring ("" matches any file).
	File string `json:"file,omitempty"`
	// Offset selects the corruption position for pinball points; negative
	// or out-of-range picks a seeded-random position.
	Offset int64 `json:"offset,omitempty"`
}

// Plan is a reproducible fault schedule: a seed plus the rules to apply.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Event records one injected fault, in injection order.
type Event struct {
	Point  Point
	Detail string
}

// ruleState tracks one rule's trigger and injection counts.
type ruleState struct {
	Rule
	triggers uint64
	injected uint64
}

// Injector evaluates a Plan. All methods are safe on a nil receiver and
// report "no fault", so callers hold a possibly-nil *Injector and call
// through unconditionally only after a nil check on the hot paths.
//
// An Injector is safe for concurrent use: when the checkpoint farm fans
// region work out across workers, one pipeline-lifetime injector is shared
// by every machine, and its rule budgets (Count, one-shot points) stay
// exact — concurrent triggers serialize, so a Count=1 rule injects exactly
// once no matter how many workers race on it. Which worker's trigger wins
// is scheduling-dependent, but the *number* of injections, and therefore
// the pipeline's recovered/dropped accounting, matches the serial run.
type Injector struct {
	mu     sync.Mutex
	rules  []*ruleState
	rng    *rand.Rand
	events []Event
}

// New builds an injector for a plan. A nil plan yields a nil injector
// (injection off).
func New(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	in := &Injector{rng: rand.New(rand.NewSource(p.Seed))}
	for _, r := range p.Rules {
		rs := &ruleState{Rule: r}
		if rs.Errno == 0 {
			rs.Errno = 5 // EIO
		}
		in.rules = append(in.rules, rs)
	}
	return in
}

// fire reports whether an eligible trigger of rs should inject now,
// advancing its deterministic counters.
func (in *Injector) fire(rs *ruleState, oneShot bool) bool {
	rs.triggers++
	if rs.triggers <= rs.After {
		return false
	}
	limit := rs.Count
	if limit == 0 && oneShot {
		limit = 1
	}
	if limit > 0 && rs.injected >= limit {
		return false
	}
	if rs.Prob > 0 && rs.Prob < 1 && in.rng.Float64() >= rs.Prob {
		return false
	}
	rs.injected++
	return true
}

func (in *Injector) record(p Point, format string, args ...any) {
	in.events = append(in.events, Event{Point: p, Detail: fmt.Sprintf(format, args...)})
}

// SyscallErrno reports whether a SyscallError rule fires for syscall num,
// returning the errno to inject.
func (in *Injector) SyscallErrno(num uint64) (int, bool) {
	if in == nil {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		if rs.Point != SyscallError {
			continue
		}
		if rs.Syscall != nil && *rs.Syscall != num {
			continue
		}
		if in.fire(rs, false) {
			in.record(SyscallError, "syscall %d -> errno %d", num, rs.Errno)
			return rs.Errno, true
		}
	}
	return 0, false
}

// ShortIO shortens an I/O transfer of n bytes at point p (ShortRead or
// ShortWrite), returning the reduced count. Transfers of 0 or 1 bytes
// cannot be shortened.
func (in *Injector) ShortIO(p Point, num uint64, n uint64) (uint64, bool) {
	if in == nil || n <= 1 {
		return n, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		if rs.Point != p {
			continue
		}
		if rs.Syscall != nil && *rs.Syscall != num {
			continue
		}
		if in.fire(rs, false) {
			short := uint64(in.rng.Int63n(int64(n)))
			in.record(p, "syscall %d: %d -> %d bytes", num, n, short)
			return short, true
		}
	}
	return n, false
}

// Trigger reports whether a parameterless kernel point (MmapExhaust,
// BrkExhaust) fires.
func (in *Injector) Trigger(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		if rs.Point != p {
			continue
		}
		if in.fire(rs, false) {
			in.record(p, "injected")
			return true
		}
	}
	return false
}

// CorruptFile applies any matching pinball corruption rules to the contents
// of a checkpoint file. It never mutates data in place: if a rule fires the
// returned slice is a corrupted copy.
func (in *Injector) CorruptFile(name string, data []byte) []byte {
	if in == nil {
		return data
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		if rs.Point != PinballTruncate && rs.Point != PinballBitflip {
			continue
		}
		if rs.File != "" && !strings.Contains(name, rs.File) {
			continue
		}
		if len(data) == 0 || !in.fire(rs, false) {
			continue
		}
		off := rs.Offset
		if off < 0 || off >= int64(len(data)) {
			off = in.rng.Int63n(int64(len(data)))
		}
		switch rs.Point {
		case PinballTruncate:
			data = append([]byte(nil), data[:off]...)
			in.record(PinballTruncate, "%s truncated to %d bytes", name, off)
		case PinballBitflip:
			data = append([]byte(nil), data...)
			bit := byte(1) << uint(in.rng.Intn(8))
			data[off] ^= bit
			in.record(PinballBitflip, "%s bit %#02x flipped at offset %d", name, bit, off)
		}
	}
	return data
}

// CorruptRestoreStub applies any matching ElfieBitflip rules to a restore
// stub's code bytes. The flip lands on the opcode byte of an
// instruction-aligned word, so the damage is always semantic (a different
// or undecodable instruction), never a silent immediate change. Like
// CorruptFile it never mutates in place: if a rule fires the returned slice
// is a corrupted copy.
func (in *Injector) CorruptRestoreStub(name string, code []byte) ([]byte, bool) {
	if in == nil || len(code) < 8 {
		return code, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		if rs.Point != ElfieBitflip {
			continue
		}
		if rs.File != "" && !strings.Contains(name, rs.File) {
			continue
		}
		if !in.fire(rs, false) {
			continue
		}
		words := int64(len(code) / 8)
		off := rs.Offset * 8
		if rs.Offset < 0 || rs.Offset >= words {
			off = in.rng.Int63n(words) * 8
		}
		out := append([]byte(nil), code...)
		bit := byte(1) << uint(in.rng.Intn(8))
		out[off] ^= bit
		in.record(ElfieBitflip, "%s opcode bit %#02x flipped at stub offset %d", name, bit, off)
		return out, true
	}
	return code, false
}

// VMFault reports whether a VM point (PageFault or UngracefulExit) triggers
// at the given machine-wide retired-instruction count. VM rules are
// one-shot unless Count raises the limit.
func (in *Injector) VMFault(retired uint64) (Point, bool) {
	if in == nil {
		return "", false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		if rs.Point != PageFault && rs.Point != UngracefulExit {
			continue
		}
		if retired < rs.AtRetired {
			continue
		}
		if in.fire(rs, true) {
			in.record(rs.Point, "at retired=%d", retired)
			return rs.Point, true
		}
	}
	return "", false
}

// Events returns the faults injected so far, in order.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// InjectedCount returns the number of injections at the given points
// (all points when none are named).
func (in *Injector) InjectedCount(points ...Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(points) == 0 {
		return len(in.events)
	}
	n := 0
	for _, e := range in.events {
		for _, p := range points {
			if e.Point == p {
				n++
				break
			}
		}
	}
	return n
}
