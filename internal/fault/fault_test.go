package fault

import (
	"reflect"
	"testing"
)

func u64(v uint64) *uint64 { return &v }

func TestNilInjectorIsOff(t *testing.T) {
	var in *Injector = New(nil)
	if in != nil {
		t.Fatal("nil plan must yield a nil injector")
	}
	if _, ok := in.SyscallErrno(0); ok {
		t.Error("nil injector injected a syscall error")
	}
	if n, ok := in.ShortIO(ShortRead, 0, 100); ok || n != 100 {
		t.Error("nil injector shortened IO")
	}
	if in.Trigger(MmapExhaust) {
		t.Error("nil injector triggered")
	}
	if got := in.CorruptFile("x.text", []byte{1, 2}); len(got) != 2 {
		t.Error("nil injector corrupted data")
	}
	if _, ok := in.VMFault(1 << 40); ok {
		t.Error("nil injector raised a VM fault")
	}
	if in.Events() != nil || in.InjectedCount() != 0 {
		t.Error("nil injector has events")
	}
}

func TestSyscallErrnoMatching(t *testing.T) {
	in := New(&Plan{Seed: 1, Rules: []Rule{
		{Point: SyscallError, Syscall: u64(0), Errno: 9, After: 1, Count: 2},
	}})
	// First trigger is skipped (After: 1).
	if _, ok := in.SyscallErrno(0); ok {
		t.Error("After not honoured")
	}
	// Non-matching syscall numbers never trigger.
	if _, ok := in.SyscallErrno(1); ok {
		t.Error("syscall filter not honoured")
	}
	for i := 0; i < 2; i++ {
		e, ok := in.SyscallErrno(0)
		if !ok || e != 9 {
			t.Fatalf("injection %d: errno=%d ok=%v", i, e, ok)
		}
	}
	// Count exhausted.
	if _, ok := in.SyscallErrno(0); ok {
		t.Error("Count not honoured")
	}
	if in.InjectedCount(SyscallError) != 2 {
		t.Errorf("events: %v", in.Events())
	}
}

func TestDefaultErrno(t *testing.T) {
	in := New(&Plan{Rules: []Rule{{Point: SyscallError}}})
	if e, ok := in.SyscallErrno(42); !ok || e != 5 {
		t.Errorf("default errno: %d ok=%v", e, ok)
	}
}

func TestShortIO(t *testing.T) {
	in := New(&Plan{Seed: 7, Rules: []Rule{{Point: ShortRead, Count: 3}}})
	for i := 0; i < 3; i++ {
		n, ok := in.ShortIO(ShortRead, 0, 1000)
		if !ok || n >= 1000 {
			t.Fatalf("short read %d: n=%d ok=%v", i, n, ok)
		}
	}
	if _, ok := in.ShortIO(ShortRead, 0, 1000); ok {
		t.Error("count exhausted but still injecting")
	}
	// A 1-byte transfer cannot be shortened.
	in2 := New(&Plan{Rules: []Rule{{Point: ShortRead}}})
	if _, ok := in2.ShortIO(ShortRead, 0, 1); ok {
		t.Error("shortened a 1-byte transfer")
	}
	// ShortWrite rules do not fire at the ShortRead point.
	in3 := New(&Plan{Rules: []Rule{{Point: ShortWrite}}})
	if _, ok := in3.ShortIO(ShortRead, 0, 100); ok {
		t.Error("point mismatch ignored")
	}
}

func TestCorruptFileDeterministic(t *testing.T) {
	data := make([]byte, 4096)
	run := func() []byte {
		in := New(&Plan{Seed: 99, Rules: []Rule{
			{Point: PinballBitflip, File: ".text", Count: 1, Offset: -1},
		}})
		return in.CorruptFile("sample.text", data)
	}
	a, b := run(), run()
	if reflect.DeepEqual(a, data) {
		t.Fatal("no corruption applied")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different corruption")
	}
	// Original buffer untouched.
	for _, v := range data {
		if v != 0 {
			t.Fatal("CorruptFile mutated its input")
		}
	}
}

func TestCorruptFileFilters(t *testing.T) {
	in := New(&Plan{Seed: 3, Rules: []Rule{
		{Point: PinballTruncate, File: ".reg", Offset: 4},
	}})
	if got := in.CorruptFile("sample.text", make([]byte, 100)); len(got) != 100 {
		t.Error("file filter not honoured")
	}
	if got := in.CorruptFile("sample.0.reg", make([]byte, 100)); len(got) != 4 {
		t.Errorf("truncation at fixed offset: len=%d", len(got))
	}
	if got := in.CorruptFile("x.reg", nil); got != nil {
		t.Error("empty file corrupted")
	}
}

func TestVMFaultOneShot(t *testing.T) {
	in := New(&Plan{Seed: 5, Rules: []Rule{
		{Point: UngracefulExit, AtRetired: 500},
	}})
	if _, ok := in.VMFault(499); ok {
		t.Error("fired before AtRetired")
	}
	p, ok := in.VMFault(500)
	if !ok || p != UngracefulExit {
		t.Fatalf("no fault at threshold: %v %v", p, ok)
	}
	if _, ok := in.VMFault(501); ok {
		t.Error("VM point fired twice (should be one-shot)")
	}
}

func TestProbabilityIsSeeded(t *testing.T) {
	count := func(seed int64) int {
		in := New(&Plan{Seed: seed, Rules: []Rule{{Point: SyscallError, Prob: 0.5}}})
		n := 0
		for i := 0; i < 200; i++ {
			if _, ok := in.SyscallErrno(1); ok {
				n++
			}
		}
		return n
	}
	a, b := count(11), count(11)
	if a != b {
		t.Errorf("same seed, different counts: %d vs %d", a, b)
	}
	if a < 50 || a > 150 {
		t.Errorf("p=0.5 over 200 trials injected %d times", a)
	}
}
