package harness

import (
	"bytes"
	"errors"
	"testing"

	"elfie/internal/asm"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/vm"
)

// fileSumProgram opens a file, reads it 8 bytes at a time accumulating a
// checksum, writes a marker to stdout per chunk, and exits with the
// checksum — kernel state (FD offset, consumed file, emitted stdout)
// threads through every loop iteration.
const fileSumProgram = `
	.text
	.global _start
_start:
	movi r0, 2          # open("/input.dat")
	limm r1, fname
	movi r2, 0
	syscall
	mov  r10, r0        # fd
	movi r9, 0
loop:
	movi r0, 0          # read(fd, buf, 8)
	mov  r1, r10
	limm r2, buf
	movi r3, 8
	syscall
	cmpi r0, 8
	jnz  done
	limm r2, buf
	ld.q r3, [r2]
	add  r9, r9, r3
	movi r0, 1          # write(1, mark, 1)
	movi r1, 1
	limm r2, mark
	movi r3, 1
	syscall
	jmp  loop
done:
	mov  r1, r9
	andi r1, r1, 255
	movi r0, 231        # exit_group(sum & 255)
	syscall
	.data
fname:	.asciz "/input.dat"
mark:	.asciz "."
buf:	.space 8
`

// twoThreadProgram clones a worker and races it over shared memory — the
// jittered-scheduler workload for native checkpoint bit-identity.
const twoThreadProgram = `
	.text
	.global _start
_start:
	movi r0, 56         # clone
	movi r1, 0
	limm r2, stk1+8192
	limm r3, worker
	syscall
	movi r8, 0
	limm r12, shared
mloop:
	movi r7, 1
	xadd r7, [r12]
	addi r8, r8, 1
	cmpi r8, 3000
	jnz  mloop
	movi r0, 60
	movi r1, 0
	syscall
worker:
	limm r12, shared
	movi r8, 0
wloop:
	ld.q r7, [r12]
	add  r9, r9, r7
	addi r8, r8, 1
	cmpi r8, 4000
	jnz  wloop
	movi r0, 60
	movi r1, 0
	syscall
	.data
shared:	.quad 0
	.bss
stk1:	.space 8192
`

func inputFS(t *testing.T) *kernel.FS {
	t.Helper()
	fs := kernel.NewFS()
	data := make([]byte, 2048)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	fs.WriteFile("/input.dat", data)
	return fs
}

// roundTripCkpt serializes a checkpoint to its file set and loads it back,
// verifying it is a valid pinball.
func roundTripCkpt(t *testing.T, ck *pinball.Pinball) *pinball.Pinball {
	t.Helper()
	files, err := ck.FileSet()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := pinball.ReadFileSet(ck.Name, files, pinball.ReadOptions{})
	if err != nil {
		t.Fatalf("checkpoint does not load back: %v", err)
	}
	if err := loaded.ValidateCheckpoint(); err != nil {
		t.Fatalf("checkpoint fails validation: %v", err)
	}
	return loaded
}

// TestNativeCheckpointPreservesKernelState interrupts a native run in the
// middle of a read loop, checkpoints, and resumes from the serialized
// checkpoint on a session with an empty filesystem config: the open FD,
// its offset, the consumed stdin/stdout, and the file contents must all
// come from the checkpoint.
func TestNativeCheckpointPreservesKernelState(t *testing.T) {
	exe, err := asm.Program(fileSumProgram)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := New(Config{Mode: ModeNative, Exe: exe, Argv: []string{"x"}, FS: inputFS(t), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	if !ref.Machine.Halted {
		t.Fatal("reference run did not finish")
	}
	wantExit := ref.Machine.ExitStatus
	wantOut := append([]byte(nil), ref.Machine.Proc.Stdout...)
	wantTotal := ref.Machine.GlobalRetired
	if len(wantOut) == 0 {
		t.Fatal("reference run wrote no stdout")
	}

	s, err := New(Config{Mode: ModeNative, Exe: exe, Argv: []string{"x"}, FS: inputFS(t), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const stopAt = 700
	var count uint64
	s.Machine.Hooks.OnIns = func(th *vm.Thread, pc uint64, ins isa.Inst) {
		count++
		if count == stopAt {
			s.Machine.RequestStop()
		}
	}
	var ckpt *pinball.Pinball
	err = s.RunCheckpointed(CkptOptions{
		Name: "native.ckpt",
		Save: func(p *pinball.Pinball) error { ckpt = p; return nil },
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if ckpt == nil {
		t.Fatal("no checkpoint saved")
	}
	if s.Machine.GlobalRetired != stopAt {
		t.Fatalf("interrupted at %d, want %d", s.Machine.GlobalRetired, stopAt)
	}

	loaded := roundTripCkpt(t, ckpt)
	// Deliberately no FS in the resume config: everything must come from
	// the checkpoint's own filesystem image and FD table.
	resumed, err := New(Config{Mode: ModeNative, Pinball: loaded, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(); err != nil {
		t.Fatal(err)
	}
	if !resumed.Machine.Halted {
		t.Fatal("resumed run did not finish")
	}
	if resumed.Machine.ExitStatus != wantExit {
		t.Errorf("resumed exit = %d, uninterrupted = %d (FD/file state lost)",
			resumed.Machine.ExitStatus, wantExit)
	}
	if !bytes.Equal(resumed.Machine.Proc.Stdout, wantOut) {
		t.Errorf("resumed stdout %q, uninterrupted %q", resumed.Machine.Proc.Stdout, wantOut)
	}
	if got := stopAt + resumed.Machine.GlobalRetired; got != wantTotal {
		t.Errorf("retired %d+%d = %d, uninterrupted %d",
			stopAt, resumed.Machine.GlobalRetired, got, wantTotal)
	}
}

// TestJitteredCheckpointBitIdentity is the native-mode bit-identity guard:
// a two-thread run under the seeded jittered scheduler, interrupted at an
// arbitrary instruction, checkpointed (PRNG state and in-flight quantum
// included), and resumed retires the identical (tid, pc) stream as the
// same run uninterrupted.
func TestJitteredCheckpointBitIdentity(t *testing.T) {
	exe, err := asm.Program(twoThreadProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModeNative, Exe: exe, Argv: []string{"x"}, Seed: 21, Jitter: 37}

	record := func(s *Session, out *[]uint64, stopAt uint64) {
		s.Machine.Hooks.OnIns = func(th *vm.Thread, pc uint64, ins isa.Inst) {
			*out = append(*out, uint64(th.TID)<<48|pc)
			if stopAt > 0 && uint64(len(*out)) == stopAt {
				s.Machine.RequestStop()
			}
		}
	}

	var ref []uint64
	refS, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	record(refS, &ref, 0)
	if err := refS.Run(); err != nil {
		t.Fatal(err)
	}
	if refS.Machine.AliveCount() != 0 {
		t.Fatal("reference did not finish")
	}

	for _, stopAt := range []uint64{3, 1009, 4999, 9001} {
		var leg1 []uint64
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		record(s, &leg1, stopAt)
		var ckpt *pinball.Pinball
		err = s.RunCheckpointed(CkptOptions{
			Name: "mt.ckpt",
			Save: func(p *pinball.Pinball) error { ckpt = p; return nil },
		})
		if !errors.Is(err, ErrInterrupted) || ckpt == nil {
			t.Fatalf("stop at %d: err=%v ckpt=%v", stopAt, err, ckpt != nil)
		}

		loaded := roundTripCkpt(t, ckpt)
		var leg2 []uint64
		resumed, err := New(Config{Mode: ModeNative, Pinball: loaded, Seed: 12345})
		if err != nil {
			t.Fatal(err)
		}
		record(resumed, &leg2, 0)
		if err := resumed.Run(); err != nil {
			t.Fatal(err)
		}
		if resumed.Machine.AliveCount() != 0 {
			t.Fatalf("stop at %d: resumed run did not finish", stopAt)
		}

		combined := append(append([]uint64(nil), leg1...), leg2...)
		if len(combined) != len(ref) {
			t.Fatalf("stop at %d: stream %d vs %d", stopAt, len(combined), len(ref))
		}
		for i := range ref {
			if combined[i] != ref[i] {
				t.Fatalf("stop at %d: streams diverge at instruction %d (tid %d pc %#x vs tid %d pc %#x)",
					stopAt, i, combined[i]>>48, combined[i]&(1<<48-1), ref[i]>>48, ref[i]&(1<<48-1))
			}
		}
	}
}

// TestInjectCursorRemaining exercises the cursor bookkeeping directly.
func TestInjectCursorRemaining(t *testing.T) {
	effects := []pinball.SyscallEffect{
		{TID: 0, Num: 1}, {TID: 1, Num: 2}, {TID: 0, Num: 3}, {TID: 1, Num: 4}, {TID: 0, Num: 5},
	}
	c := NewInjectCursor(effects)
	if e, ok := c.Next(0); !ok || e.Num != 1 {
		t.Fatalf("first pop: %v %v", e, ok)
	}
	if e, ok := c.Next(1); !ok || e.Num != 2 {
		t.Fatalf("tid 1 pop: %v %v", e, ok)
	}
	if e, ok := c.Next(0); !ok || e.Num != 3 {
		t.Fatalf("second pop: %v %v", e, ok)
	}
	rem := c.Remaining()
	if len(rem) != 2 || rem[0].Num != 4 || rem[1].Num != 5 {
		t.Fatalf("remaining: %v", rem)
	}
	c.Next(1)
	c.Next(0)
	if _, ok := c.Next(0); ok {
		t.Error("exhausted queue popped")
	}
	if rem := c.Remaining(); len(rem) != 0 {
		t.Errorf("drained cursor remaining: %v", rem)
	}
}

// TestCheckpointValidationRejectsRot corrupts checkpoint metadata in ways
// the CRC manifest cannot catch (it is recomputed on rewrite) and checks
// ValidateCheckpoint rejects each.
func TestCheckpointValidationRejectsRot(t *testing.T) {
	exe, err := asm.Program(fileSumProgram)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Mode: ModeNative, Exe: exe, Argv: []string{"x"}, FS: inputFS(t), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var count uint64
	s.Machine.Hooks.OnIns = func(th *vm.Thread, pc uint64, ins isa.Inst) {
		count++
		if count == 300 {
			s.Machine.RequestStop()
		}
	}
	var ckpt *pinball.Pinball
	if err := s.RunCheckpointed(CkptOptions{
		Name: "v.ckpt",
		Save: func(p *pinball.Pinball) error { ckpt = p; return nil },
	}); !errors.Is(err, ErrInterrupted) {
		t.Fatal(err)
	}
	if err := ckpt.ValidateCheckpoint(); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}

	corrupt := []struct {
		name string
		mut  func(p *pinball.Pinball)
	}{
		{"retired-sum", func(p *pinball.Pinball) { p.Meta.Checkpoint.GlobalRetired++ }},
		{"thread-count", func(p *pinball.Pinball) {
			p.Meta.Checkpoint.Threads = append(p.Meta.Checkpoint.Threads, pinball.ThreadState{Alive: true})
		}},
		{"no-alive-thread", func(p *pinball.Pinball) {
			for i := range p.Meta.Checkpoint.Threads {
				p.Meta.Checkpoint.Threads[i].Alive = false
			}
		}},
		{"sched-kind", func(p *pinball.Pinball) { p.Meta.Checkpoint.Sched.Kind = "lottery" }},
		{"rr-state-missing", func(p *pinball.Pinball) { p.Meta.Checkpoint.Sched.RR = nil }},
		{"clock-rate", func(p *pinball.Pinball) { p.Meta.Checkpoint.ClockNanosPerInstr = 0 }},
		{"brk-inverted", func(p *pinball.Pinball) { p.Meta.Checkpoint.Proc.Brk = p.Meta.Checkpoint.Proc.BrkStart - 1 }},
		{"stdin-offset", func(p *pinball.Pinball) { p.Meta.Checkpoint.Proc.StdinOff = len(p.Meta.Checkpoint.Proc.Stdin) + 1 }},
		{"fd-dup", func(p *pinball.Pinball) {
			ck := p.Meta.Checkpoint
			ck.Proc.FDs = append(ck.Proc.FDs, ck.Proc.FDs[len(ck.Proc.FDs)-1])
		}},
		{"fd-dangling", func(p *pinball.Pinball) {
			ck := p.Meta.Checkpoint
			ck.Proc.FDs = append(ck.Proc.FDs, kernel.FDState{FD: 99, Path: "/nope", HasFile: true})
		}},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			files, err := ckpt.FileSet()
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := pinball.ReadFileSet(ckpt.Name, files, pinball.ReadOptions{})
			if err != nil {
				t.Fatal(err)
			}
			tc.mut(fresh)
			if err := fresh.ValidateCheckpoint(); !errors.Is(err, pinball.ErrCorrupt) {
				t.Errorf("corruption %q not rejected: %v", tc.name, err)
			}
			// New must refuse to resume it.
			if _, err := New(Config{Mode: ModeNative, Pinball: fresh}); err == nil {
				t.Errorf("corrupted checkpoint %q resumed", tc.name)
			}
		})
	}
}

// TestCheckpointAcrossChain checkpoints a run while the fast path is deep
// inside a chained tight loop — no hooks, so the block-chaining executor
// (loop mode included) is what's actually running — and proves that (a)
// taking periodic mid-chain checkpoints does not perturb the run, and (b)
// resuming from a mid-chain checkpoint retires the exact remainder of the
// stream: identical totals, exit status, output, and final registers.
func TestCheckpointAcrossChain(t *testing.T) {
	const chainLoopProgram = `
	.text
	.global _start
_start:
	limm r1, 100000
loop:
	addi r2, r2, 1
	add  r3, r3, r2
	xor  r4, r4, r3
	cmp  r2, r1
	jnz  loop
	movi r0, 1          # write(1, msg, 5)
	movi r1, 1
	limm r2, msg
	movi r3, 5
	syscall
	mov  r1, r4
	andi r1, r1, 127
	movi r0, 231        # exit_group(r4 & 127)
	syscall
	.data
msg:	.ascii "done\n"
`
	exe, err := asm.Program(chainLoopProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModeNative, Exe: exe, Argv: []string{"x"}, Seed: 3}

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	if !ref.Machine.Halted {
		t.Fatal("reference run did not finish")
	}

	// Periodic checkpoints at an offset that always lands mid-loop, with
	// the chained executor active. The run itself must be unperturbed.
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first *pinball.Pinball
	var saves int
	err = s.RunCheckpointed(CkptOptions{
		Every: 12347,
		Name:  "chain.ckpt",
		Save: func(p *pinball.Pinball) error {
			if first == nil {
				first = p
			}
			saves++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if saves < 2 || first == nil {
		t.Fatalf("expected several periodic checkpoints, got %d", saves)
	}
	if s.Machine.GlobalRetired != ref.Machine.GlobalRetired ||
		s.Machine.ExitStatus != ref.Machine.ExitStatus {
		t.Errorf("checkpointed run perturbed: retired %d exit %d, want %d/%d",
			s.Machine.GlobalRetired, s.Machine.ExitStatus,
			ref.Machine.GlobalRetired, ref.Machine.ExitStatus)
	}

	base := first.Meta.Checkpoint.GlobalRetired
	if base == 0 || base >= ref.Machine.GlobalRetired {
		t.Fatalf("first checkpoint at %d, outside the run", base)
	}
	resumed, err := New(Config{Mode: ModeNative, Pinball: roundTripCkpt(t, first), Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(); err != nil {
		t.Fatal(err)
	}
	if !resumed.Machine.Halted {
		t.Fatal("resumed run did not finish")
	}
	if got := base + resumed.Machine.GlobalRetired; got != ref.Machine.GlobalRetired {
		t.Errorf("retired %d+%d = %d, uninterrupted %d",
			base, resumed.Machine.GlobalRetired, got, ref.Machine.GlobalRetired)
	}
	if resumed.Machine.ExitStatus != ref.Machine.ExitStatus {
		t.Errorf("resumed exit %d, uninterrupted %d",
			resumed.Machine.ExitStatus, ref.Machine.ExitStatus)
	}
	if !bytes.Equal(resumed.Machine.Proc.Stdout, ref.Machine.Proc.Stdout) {
		t.Errorf("resumed stdout %q, uninterrupted %q",
			resumed.Machine.Proc.Stdout, ref.Machine.Proc.Stdout)
	}
	if resumed.Machine.Threads[0].Regs.GPR != ref.Machine.Threads[0].Regs.GPR {
		t.Errorf("final registers diverge:\nresumed %v\nref     %v",
			resumed.Machine.Threads[0].Regs.GPR, ref.Machine.Threads[0].Regs.GPR)
	}
}
