package harness

import (
	"errors"
	"testing"

	"elfie/internal/asm"
	"elfie/internal/fault"
	"elfie/internal/kernel"
	"elfie/internal/vm"
)

const exitProgram = `
	.global _start
_start:	movi r8, 0
loop:	addi r8, r8, 1
	cmpi r8, 1000
	jnz  loop
	movi r0, 231
	movi r1, 7
	syscall
`

func TestConfigNeedsExactlyOneSource(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no source accepted")
	}
	exe, err := asm.Program(exitProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Exe: exe, Sched: SchedTrace}); err == nil {
		t.Error("SchedTrace without a pinball accepted")
	}
}

func TestNativeRunAndBudget(t *testing.T) {
	exe, err := asm.Program(exitProgram)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Mode: ModeNative, Exe: exe, Argv: []string{"x"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Machine.ExitStatus != 7 {
		t.Errorf("exit = %d, want 7", s.Machine.ExitStatus)
	}

	// Budget is the end condition: a tight budget stops before the exit.
	s2, err := New(Config{Mode: ModeNative, Exe: exe, Argv: []string{"x"}, Seed: 1, Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if s2.Machine.Halted && s2.Machine.ExitStatus == 7 {
		t.Error("budgeted run still reached the exit syscall")
	}
}

func TestFaultArmingUniform(t *testing.T) {
	exe, err := asm.Program(exitProgram)
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Seed: 3, Rules: []fault.Rule{{Point: fault.SyscallError}}}
	s, err := New(Config{Mode: ModeNative, Exe: exe, Argv: []string{"x"}, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if s.Injector == nil {
		t.Fatal("plan did not arm an injector")
	}
	if s.Kernel.Fault != s.Injector || s.Machine.FaultInj != s.Injector {
		t.Error("kernel and VM injection arming diverge")
	}

	// No plan: nothing armed, fast path eligible.
	s2, err := New(Config{Mode: ModeNative, Exe: exe, Argv: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Injector != nil || s2.Machine.FaultInj != nil || s2.Kernel.Fault != nil {
		t.Error("unarmed session carries an injector")
	}

	// A caller-owned injector is shared, not replaced.
	inj := fault.New(plan)
	s3, err := New(Config{Mode: ModeNative, Exe: exe, Argv: []string{"x"}, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if s3.Injector != inj || s3.Machine.FaultInj != inj || s3.Kernel.Fault != inj {
		t.Error("caller-owned injector not armed everywhere")
	}
}

func TestResetMatchesFreshSession(t *testing.T) {
	exe, err := asm.Program(exitProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModeNative, Exe: exe, Argv: []string{"x"}, Seed: 5, Jitter: 10}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	first := s.Machine.GlobalRetired

	// Reset to a different seed, run, then reset back to the original: the
	// rewound machine must reproduce the original run exactly.
	if err := s.Reset(99); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(5); err != nil {
		t.Fatal(err)
	}
	if len(s.Machine.Threads) != 1 || s.Machine.GlobalRetired != 0 {
		t.Fatalf("reset left stale run state: threads=%d retired=%d",
			len(s.Machine.Threads), s.Machine.GlobalRetired)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Machine.GlobalRetired != first || s.Machine.ExitStatus != 7 {
		t.Errorf("reset run diverged: retired %d vs %d, exit %d",
			s.Machine.GlobalRetired, first, s.Machine.ExitStatus)
	}

	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Run(); err != nil {
		t.Fatal(err)
	}
	if fresh.Machine.GlobalRetired != s.Machine.GlobalRetired ||
		fresh.Machine.Threads[0].Regs.GPR != s.Machine.Threads[0].Regs.GPR {
		t.Error("reset session diverges from a fresh session at the same seed")
	}
}

func TestResetRejectsCallerKernel(t *testing.T) {
	exe, err := asm.Program(exitProgram)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Exe: exe, Argv: []string{"x"}, Kernel: kernel.New(kernel.NewFS(), 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(2); err == nil {
		t.Error("caller-kernel session reset accepted")
	}
}

func TestRunErrorTyping(t *testing.T) {
	base := errors.New("boom")
	err := WrapRun(ModeSim, base)
	if !errors.Is(err, ErrRun) {
		t.Error("wrapped error does not match ErrRun")
	}
	if !errors.Is(err, base) {
		t.Error("wrapped error lost its cause")
	}
	var re *RunError
	if !errors.As(err, &re) || re.Mode != ModeSim {
		t.Errorf("wrong typed error: %v", err)
	}
	// Idempotent: re-wrapping keeps the original mode tag.
	again := WrapRun(ModeLog, err)
	if again != err {
		t.Error("already-tagged error re-wrapped")
	}
	if WrapRun(ModeLog, nil) != nil {
		t.Error("nil error wrapped")
	}
}

func TestSchedulerPolicies(t *testing.T) {
	exe, err := asm.Program(exitProgram)
	if err != nil {
		t.Fatal(err)
	}
	native, err := New(Config{Exe: exe, Argv: []string{"x"}, Sched: SchedNative, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !native.Machine.PauseDoesNotYield {
		t.Error("SchedNative must make PAUSE a pure timing hint")
	}
	det, err := New(Config{Exe: exe, Argv: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if det.Machine.PauseDoesNotYield {
		t.Error("deterministic session must let PAUSE yield")
	}
	if _, ok := det.Machine.Sched.(*vm.RoundRobin); !ok {
		t.Errorf("deterministic session scheduler is %T", det.Machine.Sched)
	}
}
