// Package harness is the one place machine runs are assembled. The paper's
// tool-chain pushes the same machine state through five execution modes —
// logging, constrained replay, native ELFie execution, simulator feeding,
// and validation measurement — and every mode needs the same parts wired
// the same way: a program source, a kernel personality, a scheduler policy,
// an instruction budget, and (optionally) fault-injection arming. Before
// this package each mode assembled those parts by hand, with drift-prone
// duplicated scheduler literals; now a declarative Config composes one
// Session, and the quantum/seed defaults below are defined exactly once.
//
// A Session also supports Reset: rebuilding the machine around a fresh
// kernel and seed while reusing the parsed executable and the pristine
// filesystem snapshot. Validation trials, which used to re-serialize and
// re-parse a region's ELFie for every trial, reset one session per region
// instead — byte-identical results, measurably less per-trial work.
package harness

import (
	"errors"
	"fmt"

	"elfie/internal/elfobj"
	"elfie/internal/fault"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/mem"
	"elfie/internal/pinball"
	"elfie/internal/vm"
)

// Scheduler quantum/seed defaults. This is the single definition site: raw
// vm.NewRoundRobin construction outside this package is rejected by the
// construction lint in internal/elflint/golint.
const (
	// DefaultQuantum is the deterministic round-robin quantum used by the
	// logger, the replayer's free-running mode, and every machine that
	// needs reproducible interleaving.
	DefaultQuantum = 100
	// NativeQuantum and NativeJitter model free-running ELFie execution
	// with threads pinned to dedicated cores: coarse jittering quanta let
	// threads drift apart between barriers, which is why unconstrained
	// ELFie simulations retire more instructions than constrained pinball
	// replay (the paper's Fig. 11).
	NativeQuantum = 1000
	NativeJitter  = 700
)

// SysStateDir is where SYSSTATE files are installed in the guest filesystem
// (the path compiled into converted ELFies by core.Convert).
const SysStateDir = "/sysstate"

// Mode names the execution mode a session serves. It selects nothing by
// itself — parts are chosen explicitly — but tags the session's typed run
// errors so every mode surfaces mid-run kernel failures the same way.
type Mode int

// Execution modes of the tool-chain.
const (
	// ModeNative: native ELFie (or plain program) execution.
	ModeNative Mode = iota
	// ModeLog: PinPlay region capture.
	ModeLog
	// ModeReplay: constrained replay of a pinball.
	ModeReplay
	// ModeSim: feeding a timing simulator (sniper, coresim, gem5sim).
	ModeSim
	// ModeMeasure: functional measurement (BBV profiling, perfle trials).
	ModeMeasure
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeLog:
		return "log"
	case ModeReplay:
		return "replay"
	case ModeSim:
		return "sim"
	case ModeMeasure:
		return "measure"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// SchedPolicy selects the session's scheduler.
type SchedPolicy int

// Scheduler policies.
const (
	// SchedAuto resolves to SchedJittered when Config.Jitter > 0, else
	// SchedDeterministic.
	SchedAuto SchedPolicy = iota
	// SchedDeterministic: fixed-quantum round-robin (DefaultQuantum), no
	// jitter — the logger's and profiler's reproducible interleaving.
	SchedDeterministic
	// SchedJittered: round-robin with DefaultQuantum and Config.Jitter,
	// seeded by the session seed — models OS-level run-to-run variation.
	SchedJittered
	// SchedNative: NativeQuantum/NativeJitter round-robin with PAUSE as a
	// pure timing hint — free-running threads pinned to dedicated cores,
	// the unconstrained ELFie simulation mode.
	SchedNative
	// SchedTrace: replay the pinball's recorded schedule exactly
	// (requires a Pinball source).
	SchedTrace
)

// Engine selects the execution-core variant a session runs on. The default
// (EngineChained) is the full fast path; the degraded variants exist so the
// experiment grid can measure each core tier through the same session
// plumbing instead of poking vm.Machine flags by hand.
type Engine int

// Execution-core variants.
const (
	// EngineChained: block cache with superblock chaining — the fast path.
	EngineChained Engine = iota
	// EngineBlock: decoded block cache, chaining disabled.
	EngineBlock
	// EngineInterp: per-instruction interpreter, no block cache.
	EngineInterp
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineChained:
		return "chained"
	case EngineBlock:
		return "block"
	case EngineInterp:
		return "interp"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// SysState is the installable system-state part: the sysstate.State of a
// converted region. It is declared structurally so the dependency points
// harness <- sysstate (package sysstate analyzes pinballs by replaying
// them, so it must be allowed to sit above the harness).
type SysState interface {
	Install(fs *kernel.FS, dir string)
}

// Config declares a session's parts. Exactly one program source (Exe or
// Pinball) must be set; every other part has a working zero value.
type Config struct {
	// Mode tags the session's typed run errors (see RunError).
	Mode Mode

	// Exe is a program source: a PVM executable (typically an ELFie),
	// loaded through the kernel loader with Argv/Envp.
	Exe *elfobj.File
	// Pinball is a program source: captured state mapped directly — the
	// pinball's memory image, brk, and one thread per captured context.
	Pinball *pinball.Pinball
	// Argv/Envp apply to the Exe source only.
	Argv []string
	Envp []string

	// FS is the guest filesystem (nil = empty). The session snapshots it
	// (after SysState installation) so Reset can rebuild pristine state.
	FS *kernel.FS
	// SysState, when non-nil, is installed into FS at SysStateDir before
	// the kernel is built — the SYSSTATE personality of converted ELFies.
	SysState SysState
	// Kernel, when non-nil, is used as-is and FS/SysState/Seed are
	// ignored — for callers (the replayer) that prepared kernel state
	// themselves. Such sessions are not resettable.
	Kernel *kernel.Kernel
	// Seed drives kernel construction (stack randomization, clock jitter)
	// and seeds jittered schedulers.
	Seed int64

	// Sched picks the scheduler policy; Jitter parameterizes
	// SchedJittered (and resolves SchedAuto).
	Sched  SchedPolicy
	Jitter int

	// Engine selects the execution-core variant (default EngineChained).
	// Applied on every build, so Reset preserves the selection.
	Engine Engine

	// Budget is the end condition: stop after this many retired
	// instructions (0 = unbounded).
	Budget uint64

	// Plan arms fault injection with a session-lifetime injector;
	// Injector arms a caller-owned injector instead (shared across
	// sessions so rule budgets span a whole pipeline). Arming is uniform:
	// kernel rules and VM rules always arm together, and a non-nil VM
	// injector disables the decoded-block cache, so injected faults are
	// never masked by a fast path.
	Plan     *fault.Plan
	Injector *fault.Injector
}

// Session is one composed machine run.
type Session struct {
	Machine *vm.Machine
	Kernel  *kernel.Kernel
	// Injector is the armed fault injector (nil when injection is off).
	Injector *fault.Injector
	// Cursor, when set by the caller (the replayer), is the session's
	// syscall-injection cursor; mid-run checkpoints serialize its
	// unconsumed tail so a resumed replay injects the remaining effects.
	Cursor *InjectCursor

	cfg    Config
	fsSnap *kernel.FS
	// budget is the session's effective instruction budget: cfg.Budget, or
	// the checkpoint's remaining budget when resuming one.
	budget uint64
}

// New composes a session from its parts.
func New(cfg Config) (*Session, error) {
	if (cfg.Exe == nil) == (cfg.Pinball == nil) {
		return nil, fmt.Errorf("harness: config needs exactly one program source (Exe or Pinball)")
	}
	if cfg.Sched == SchedTrace && cfg.Pinball == nil {
		return nil, fmt.Errorf("harness: SchedTrace needs a Pinball source")
	}
	s := &Session{cfg: cfg, Injector: cfg.Injector}
	if s.Injector == nil {
		s.Injector = fault.New(cfg.Plan) // nil plan -> nil injector
	}
	var ck *pinball.CheckpointMeta
	if cfg.Pinball != nil {
		if ck = cfg.Pinball.Meta.Checkpoint; ck != nil {
			if err := cfg.Pinball.ValidateCheckpoint(); err != nil {
				return nil, err
			}
		}
	}
	k := cfg.Kernel
	if ck != nil && cfg.Pinball.FS != nil {
		// A live checkpoint carries the mid-run filesystem image its FD
		// table points into; that image is the truth, so the kernel is
		// rebuilt around it even when the caller supplied one.
		fs := kernel.RestoreFS(cfg.Pinball.FS)
		s.fsSnap = fs.Clone()
		k = kernel.New(fs, cfg.Seed)
	} else if k == nil {
		fs := cfg.FS
		if fs == nil {
			fs = kernel.NewFS()
		}
		if cfg.SysState != nil {
			cfg.SysState.Install(fs, SysStateDir)
		}
		s.fsSnap = fs.Clone()
		k = kernel.New(fs, cfg.Seed)
	}
	m, err := s.build(k, cfg.Seed, nil)
	if err != nil {
		return nil, err
	}
	s.Machine, s.Kernel = m, k
	return s, nil
}

// Reset rebuilds the session around a fresh kernel seeded with seed: the
// pristine filesystem snapshot is re-cloned, the program re-loaded, hooks
// cleared, and the scheduler re-seeded — equivalent, state for state, to
// constructing a new session with the same Config at the new seed, but
// without re-serializing or re-parsing the program source.
func (s *Session) Reset(seed int64) error {
	if s.cfg.Kernel != nil {
		return fmt.Errorf("harness: session around a caller-provided kernel is not resettable")
	}
	k := kernel.New(s.fsSnap.Clone(), seed)
	if _, err := s.build(k, seed, s.Machine); err != nil {
		return err
	}
	s.Kernel = k
	return nil
}

// build assembles (or, when reuse is non-nil, rewinds) the machine around
// kernel k. The machine is only touched after the program source loaded
// successfully, so a failed build leaves a reused machine intact.
func (s *Session) build(k *kernel.Kernel, seed int64, reuse *vm.Machine) (*vm.Machine, error) {
	if s.Injector != nil {
		k.Fault = s.Injector
	}
	proc := kernel.NewProcess(k.FS)
	var entry isa.RegFile
	haveEntry := false
	if exe := s.cfg.Exe; exe != nil {
		res, err := k.Load(proc, exe, s.cfg.Argv, s.cfg.Envp)
		if err != nil {
			return nil, err
		}
		entry = isa.RegFile{PC: res.Entry}
		entry.GPR[isa.RSP] = res.SP
		haveEntry = true
	} else {
		pb := s.cfg.Pinball
		for _, pg := range pb.Pages {
			prot := pg.Prot
			if prot == 0 {
				prot = mem.ProtRW
			}
			proc.AS.Map(pg.Addr, uint64(len(pg.Data)), prot)
			proc.AS.WriteNoFault(pg.Addr, pg.Data)
		}
		proc.BrkStart = pb.Meta.BrkStart
		proc.Brk = pb.Meta.Brk
		if ck := pb.Meta.Checkpoint; ck != nil {
			// Resume: restore the kernel-side process state and rebase the
			// virtual clock so guest time continues from the checkpoint
			// (the resumed machine restarts its icount at zero).
			proc.RestoreState(ck.Proc)
			k.Clock = kernel.Clock{
				BaseNanos:     ck.ClockBase,
				NanosPerInstr: ck.ClockNanosPerInstr,
			}
		}
	}

	m := reuse
	if m == nil {
		m = vm.New(k, proc)
	} else {
		m.Reset(k, proc)
	}
	if haveEntry {
		m.AddThread(entry)
	} else {
		for _, regs := range s.cfg.Pinball.Regs {
			m.AddThread(regs)
		}
	}
	switch s.cfg.Engine {
	case EngineBlock:
		m.DisableChaining = true
	case EngineInterp:
		m.DisableBlockCache = true
	}
	m.FaultInj = s.Injector
	pol := s.resolveSched()
	m.Sched = s.scheduler(pol, seed)
	m.PauseDoesNotYield = pol == SchedNative
	s.budget = s.cfg.Budget
	if pb := s.cfg.Pinball; pb != nil && pb.Meta.Checkpoint != nil {
		s.resumeCheckpoint(m, k, pb.Meta.Checkpoint)
	}
	m.MaxInstructions = s.budget
	return m, nil
}

// resumeCheckpoint applies the machine-level state of a live checkpoint:
// per-thread liveness and perf counters, the serialized scheduler, the
// PAUSE semantics, and the remaining instruction budget. Per-thread
// retired counts restart at zero — RegionLength was rewritten to the
// remainders when the checkpoint was taken, and RestorePerf re-arms the
// counters at their absolute counts via modular bases.
func (s *Session) resumeCheckpoint(m *vm.Machine, k *kernel.Kernel, ck *pinball.CheckpointMeta) {
	for i, st := range ck.Threads {
		if i >= len(m.Threads) {
			break
		}
		t := m.Threads[i]
		t.Alive = st.Alive
		t.ExitStatus = st.ExitStatus
		t.RestorePerf(st.Perf)
	}
	switch ck.Sched.Kind {
	case pinball.SchedKindRR:
		m.Sched = vm.RestoreRoundRobin(*ck.Sched.RR)
	case pinball.SchedKindTrace:
		m.Sched = &vm.TraceScheduler{Trace: s.cfg.Pinball.Sched}
	}
	m.PauseDoesNotYield = ck.Sched.PauseDoesNotYield
	if s.budget == 0 {
		s.budget = ck.BudgetRemaining
	}
}

// resolveSched resolves SchedAuto from the config.
func (s *Session) resolveSched() SchedPolicy {
	if s.cfg.Sched != SchedAuto {
		return s.cfg.Sched
	}
	if s.cfg.Jitter > 0 {
		return SchedJittered
	}
	return SchedDeterministic
}

// scheduler builds the scheduler for one (re)build; jittered policies take
// fresh rng state from seed, so Reset runs are independent trials.
func (s *Session) scheduler(pol SchedPolicy, seed int64) vm.Scheduler {
	switch pol {
	case SchedJittered:
		return vm.NewRoundRobin(DefaultQuantum, s.cfg.Jitter, seed)
	case SchedNative:
		return vm.NewRoundRobin(NativeQuantum, NativeJitter, seed)
	case SchedTrace:
		return &vm.TraceScheduler{Trace: s.cfg.Pinball.Sched}
	default:
		return vm.NewRoundRobin(DefaultQuantum, 0, 0)
	}
}

// Run executes the machine, wrapping any mid-run error in a *RunError
// tagged with the session's mode — the uniform typed error every execution
// mode surfaces.
func (s *Session) Run() error {
	return WrapRun(s.cfg.Mode, s.Machine.Run())
}

// ErrRun matches (errors.Is) the typed mid-run error of every harness
// execution mode.
var ErrRun = errors.New("harness: run failed")

// RunError is a mid-run machine/kernel error tagged with its execution
// mode. All five modes wrap vm.Machine.Run failures in it, so callers
// classify them with errors.Is(err, ErrRun) regardless of mode.
type RunError struct {
	Mode Mode
	Err  error
}

// Error implements error.
func (e *RunError) Error() string { return fmt.Sprintf("harness: %s run: %v", e.Mode, e.Err) }

// Unwrap exposes the underlying machine error.
func (e *RunError) Unwrap() error { return e.Err }

// Is matches ErrRun.
func (e *RunError) Is(target error) bool { return target == ErrRun }

// WrapRun tags a mid-run machine error with a mode, for run paths that
// drive a caller-provided machine rather than a full session. Already-
// tagged errors pass through unchanged.
func WrapRun(mode Mode, err error) error {
	if err == nil {
		return nil
	}
	var re *RunError
	if errors.As(err, &re) {
		return err
	}
	return &RunError{Mode: mode, Err: err}
}
