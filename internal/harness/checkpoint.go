package harness

import (
	"errors"
	"fmt"

	"elfie/internal/pinball"
	"elfie/internal/vm"
)

// This file implements live mid-run checkpointing: freezing a running
// session back into a pinball that Config{Pinball: ...} resumes. The
// checkpoint is the paper's durable-artifact idea applied to in-flight
// work — a hung or killed region job restarts from its last checkpoint
// instead of the region start (CheckSync-style), and the resumed run
// retires the identical instruction stream an uninterrupted run would
// have (see TestCheckpointBitIdentity).
//
// Resume restarts the machine's retired counters at zero: the checkpoint
// rewrites RegionLength to the per-thread *remainders*, rebases the
// virtual clock so guest time continues seamlessly, re-arms perf counters
// at their absolute counts, and serializes the scheduler's PRNG so the
// quantum sequence continues mid-stream.

// ErrInterrupted is returned by RunCheckpointed when an external
// RequestStop cut the run short; the final checkpoint was saved before it
// is returned, so the caller can retry from it.
var ErrInterrupted = errors.New("harness: run interrupted")

// InjectCursor walks a pinball's syscall-effect log in per-thread program
// order — the replayer's injection queues — while remembering enough to
// serialize the unconsumed tail into a mid-run checkpoint.
type InjectCursor struct {
	effects []pinball.SyscallEffect
	queues  map[int][]int // tid -> indices into effects, program order
	pos     map[int]int   // tid -> consumed prefix of queues[tid]
}

// NewInjectCursor builds a cursor over a pinball's effect log.
func NewInjectCursor(effects []pinball.SyscallEffect) *InjectCursor {
	c := &InjectCursor{
		effects: effects,
		queues:  make(map[int][]int),
		pos:     make(map[int]int),
	}
	for i := range effects {
		tid := effects[i].TID
		c.queues[tid] = append(c.queues[tid], i)
	}
	return c
}

// Next pops the next logged effect for a thread; ok=false when the
// thread's log is exhausted (an unlogged-syscall divergence).
func (c *InjectCursor) Next(tid int) (*pinball.SyscallEffect, bool) {
	q, p := c.queues[tid], c.pos[tid]
	if p >= len(q) {
		return nil, false
	}
	c.pos[tid] = p + 1
	return &c.effects[q[p]], true
}

// Peek returns the next logged effect for a thread without consuming it;
// ok=false when the thread's log is exhausted. The replayer's inline
// syscall fast path peeks first and only consumes (Next) entries it can
// retire as pure returns, leaving declined entries in place for the full
// filter path.
func (c *InjectCursor) Peek(tid int) (*pinball.SyscallEffect, bool) {
	q, p := c.queues[tid], c.pos[tid]
	if p >= len(q) {
		return nil, false
	}
	return &c.effects[q[p]], true
}

// Remaining returns the unconsumed effects in original log order — the
// .sel content of a mid-run checkpoint.
func (c *InjectCursor) Remaining() []pinball.SyscallEffect {
	consumed := make(map[int]bool)
	for tid, p := range c.pos {
		for j := 0; j < p; j++ {
			consumed[c.queues[tid][j]] = true
		}
	}
	var out []pinball.SyscallEffect
	for i := range c.effects {
		if !consumed[i] {
			out = append(out, c.effects[i])
		}
	}
	return out
}

// CheckpointState freezes the session into an in-memory checkpoint
// pinball named name. The machine must not be running concurrently. The
// resulting pinball resumes through Config{Pinball: ...}: its memory image
// and registers are the live state, its RegionLength/TotalInstructions are
// the per-thread remainders, its .sel and .race files are the unconsumed
// injection log and schedule, and its Checkpoint metadata carries the
// kernel and scheduler state resume needs.
func (s *Session) CheckpointState(name string) (*pinball.Pinball, error) {
	m, k := s.Machine, s.Kernel
	proc := m.Proc
	pb := &pinball.Pinball{Name: name}

	for _, r := range proc.AS.Regions() {
		data := make([]byte, r.Size)
		proc.AS.ReadNoFault(r.Addr, data)
		pb.Pages = append(pb.Pages, pinball.Page{Addr: r.Addr, Prot: r.Prot, Data: data})
	}

	orig := s.cfg.Pinball
	threads := make([]pinball.ThreadState, len(m.Threads))
	regionLen := make([]uint64, len(m.Threads))
	var total uint64
	for i, t := range m.Threads {
		pb.Regs = append(pb.Regs, t.Regs)
		threads[i] = pinball.ThreadState{
			Alive: t.Alive, ExitStatus: t.ExitStatus,
			Retired: t.Retired, Perf: t.PerfState(),
		}
		if orig != nil && i < len(orig.Meta.RegionLength) &&
			orig.Meta.RegionLength[i] > t.Retired {
			regionLen[i] = orig.Meta.RegionLength[i] - t.Retired
		}
		total += regionLen[i]
	}

	sst := pinball.SchedState{PauseDoesNotYield: m.PauseDoesNotYield}
	switch sch := m.Sched.(type) {
	case *vm.TraceScheduler:
		sst.Kind = pinball.SchedKindTrace
		pb.Sched = sch.Remaining()
	case *vm.RoundRobin:
		sst.Kind = pinball.SchedKindRR
		ptid, pn := m.PendingQuantum()
		st := sch.State(pn)
		sst.RR = &st
		sst.PendingTID, sst.PendingN = ptid, pn
	default:
		return nil, fmt.Errorf("harness: scheduler %T is not checkpointable", m.Sched)
	}

	if s.Cursor != nil {
		pb.Syscalls = s.Cursor.Remaining()
	}

	var budgetRem uint64
	if s.budget > m.GlobalRetired {
		budgetRem = s.budget - m.GlobalRetired
	}
	pb.Meta = pinball.Meta{
		ProgramName:       s.originName(),
		NumThreads:        len(m.Threads),
		RegionLength:      regionLen,
		TotalInstructions: total,
		Fat:               true,
		BrkStart:          proc.BrkStart,
		Brk:               proc.Brk,
	}
	if orig != nil {
		pb.Meta.RegionStartIcount = orig.Meta.RegionStartIcount + m.GlobalRetired
		pb.Meta.StackRegions = orig.Meta.StackRegions
		if orig.Meta.WarmupLength > m.GlobalRetired {
			pb.Meta.WarmupLength = orig.Meta.WarmupLength - m.GlobalRetired
		}
	}
	pb.FS = k.FS.Snapshot()
	pb.Meta.Checkpoint = &pinball.CheckpointMeta{
		Origin:             s.originName(),
		GlobalRetired:      m.GlobalRetired,
		Threads:            threads,
		ClockBase:          k.Clock.Now(m.GlobalRetired),
		ClockNanosPerInstr: k.Clock.NanosPerInstr,
		BudgetRemaining:    budgetRem,
		Sched:              sst,
		Proc:               proc.State(),
	}
	return pb, nil
}

// originName names what this run started from, threaded through chained
// checkpoints so a checkpoint-of-a-checkpoint still names the root.
func (s *Session) originName() string {
	if pb := s.cfg.Pinball; pb != nil {
		if pb.Meta.Checkpoint != nil && pb.Meta.Checkpoint.Origin != "" {
			return pb.Meta.Checkpoint.Origin
		}
		return pb.Name
	}
	if len(s.cfg.Argv) > 0 {
		return s.cfg.Argv[0]
	}
	return "exe"
}

// Checkpoint freezes the session into a checkpoint pinball named name and
// saves its file set into dir.
func (s *Session) Checkpoint(dir, name string) (*pinball.Pinball, error) {
	pb, err := s.CheckpointState(name)
	if err != nil {
		return nil, err
	}
	if err := pb.Save(dir); err != nil {
		return nil, err
	}
	return pb, nil
}

// CkptOptions configures RunCheckpointed.
type CkptOptions struct {
	// Every takes a checkpoint each time this many more instructions have
	// retired (0 = only checkpoint on interruption).
	Every uint64
	// Name names the checkpoint pinballs.
	Name string
	// Save persists each checkpoint (to a store, a directory, ...). It is
	// called on every periodic checkpoint and on interruption.
	Save func(*pinball.Pinball) error
}

// RunCheckpointed runs the session to completion, taking periodic
// checkpoints and a final one if an external RequestStop (a watchdog)
// interrupts the run — in which case it returns ErrInterrupted after the
// checkpoint is saved, so the caller can resume from it.
func (s *Session) RunCheckpointed(opts CkptOptions) error {
	if opts.Name == "" {
		opts.Name = s.originName() + ".ckpt"
	}
	m := s.Machine
	for {
		target := s.budget
		if opts.Every > 0 {
			next := m.GlobalRetired + opts.Every
			if target == 0 || next < target {
				target = next
			}
		}
		m.MaxInstructions = target
		before := m.GlobalRetired
		if err := s.Run(); err != nil {
			return err
		}
		if m.StopRequested() {
			if opts.Save != nil {
				pb, err := s.CheckpointState(opts.Name)
				if err != nil {
					return err
				}
				if err := opts.Save(pb); err != nil {
					return err
				}
			}
			return WrapRun(s.cfg.Mode, ErrInterrupted)
		}
		if m.Halted || m.AliveCount() == 0 {
			return nil
		}
		if s.budget > 0 && m.GlobalRetired >= s.budget {
			return nil
		}
		if m.GlobalRetired == before {
			return nil // no forward progress; avoid spinning
		}
		if opts.Every == 0 {
			return nil
		}
		if opts.Save != nil {
			pb, err := s.CheckpointState(opts.Name)
			if err != nil {
				return err
			}
			if err := opts.Save(pb); err != nil {
				return err
			}
		}
	}
}
