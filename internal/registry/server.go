package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"time"

	"elfie/internal/store"
)

// Tenant is one namespace's policy.
type Tenant struct {
	// Quota caps the tenant's total logical bytes (0 = unlimited). Logical,
	// not physical: what the tenant's artifacts would cost to download, so
	// a tenant cannot burn quota accounting on how well its pages dedup.
	Quota int64
	// MaxAge is the tenant's GC policy: entries unused this long expire on
	// the next tenant GC (0 = never).
	MaxAge time.Duration
}

// ServerOptions configures a registry server.
type ServerOptions struct {
	// Tenants, when non-empty, closes the namespace set: requests for
	// unlisted tenants are rejected. When empty the registry is open —
	// any well-formed tenant name is accepted with DefaultPolicy.
	Tenants map[string]Tenant
	// DefaultPolicy applies to auto-created tenants in open mode.
	DefaultPolicy Tenant
	// Lint arms elflint on the deep-verify endpoint, so the registry can
	// attest it would never serve an artifact the static verifier rejects.
	Lint bool
	// MaxBlob bounds a single uploaded blob (0 = 16 MiB) — the server
	// refuses to buffer more than this per request.
	MaxBlob int64
}

// Server serves one content-addressed store over HTTP. All state beyond the
// store itself lives on disk under <root>/uploads, so a restarted server
// resumes every in-flight upload where it stopped.
type Server struct {
	store *store.Store
	opts  ServerOptions

	// upMu serializes upload-session create/commit transitions (blob PUTs
	// within a session are naturally parallel: distinct files).
	upMu sync.Mutex

	// chunkMu guards chunkSets, the per-tenant cache of which chunk object
	// IDs the tenant's entries reference (see tenantChunks).
	chunkMu   sync.Mutex
	chunkSets map[string]*chunkSet
}

// chunkSet caches one tenant's referenced chunk IDs, keyed by a signature
// of the tenant's (key, object) entry pairs so any index change — commit,
// delete, GC — invalidates it.
type chunkSet struct {
	sig string
	ids map[string]bool
}

// NewServer wraps a store in a registry server.
func NewServer(s *store.Store, opts ServerOptions) *Server {
	if opts.MaxBlob <= 0 {
		opts.MaxBlob = 16 << 20
	}
	return &Server{store: s, opts: opts, chunkSets: make(map[string]*chunkSet)}
}

var (
	tenantRe = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)
	keyRe    = regexp.MustCompile(`^[A-Za-z0-9._:-]+(/[A-Za-z0-9._:-]+)*$`)
)

// validKey accepts store keys, including slash-separated ones like
// ckpt/<job>/<icount> (clients percent-encode the slashes; the router keeps
// them in one path segment). Keys are index names, never filesystem paths,
// but ".." segments are refused anyway.
func validKey(key string) bool {
	if len(key) == 0 || len(key) > 200 || !keyRe.MatchString(key) {
		return false
	}
	for _, seg := range strings.Split(key, "/") {
		if seg == ".." {
			return false
		}
	}
	return true
}

// tenantPrefix namespaces a tenant's keys inside the shared store index.
func tenantPrefix(tenant string) string { return "t/" + tenant + "/" }

// Handler returns the registry's HTTP handler.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/ping", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, PingResponse{OK: true, Version: ProtocolVersion})
	})
	mux.HandleFunc("GET /v1/t/{tenant}", sv.tenantized(sv.handleTenantStatus))
	mux.HandleFunc("GET /v1/t/{tenant}/entries", sv.tenantized(sv.handleEntries))
	mux.HandleFunc("GET /v1/t/{tenant}/artifacts/{key}", sv.tenantized(sv.handleArtifact))
	mux.HandleFunc("GET /v1/t/{tenant}/artifacts/{key}/files/{name}", sv.tenantized(sv.handleArtifactFile))
	mux.HandleFunc("GET /v1/t/{tenant}/objects/{id}", sv.tenantized(sv.handleObject))
	mux.HandleFunc("POST /v1/t/{tenant}/uploads", sv.tenantized(sv.handleUploadOpen))
	mux.HandleFunc("GET /v1/t/{tenant}/uploads/{id}", sv.tenantized(sv.handleUploadStatus))
	mux.HandleFunc("PUT /v1/t/{tenant}/uploads/{id}/blobs/{blob}", sv.tenantized(sv.handleUploadBlob))
	mux.HandleFunc("POST /v1/t/{tenant}/uploads/{id}/commit", sv.tenantized(sv.handleUploadCommit))
	mux.HandleFunc("POST /v1/t/{tenant}/verify", sv.tenantized(sv.handleVerify))
	mux.HandleFunc("POST /v1/t/{tenant}/gc", sv.tenantized(sv.handleGC))
	return mux
}

// tenantized validates the tenant path segment and resolves its policy
// before dispatching.
func (sv *Server) tenantized(h func(http.ResponseWriter, *http.Request, string, Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		if !tenantRe.MatchString(name) {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid tenant name %q", name))
			return
		}
		pol, ok := sv.opts.Tenants[name]
		if !ok {
			if len(sv.opts.Tenants) > 0 {
				writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", name))
				return
			}
			pol = sv.opts.DefaultPolicy
		}
		h(w, r, name, pol)
	}
}

func (sv *Server) handleTenantStatus(w http.ResponseWriter, r *http.Request, tenant string, pol Tenant) {
	entries, logical := sv.tenantUsage(tenant)
	writeJSON(w, http.StatusOK, TenantStatus{
		Name: tenant, Entries: entries, LogicalBytes: logical,
		QuotaBytes: pol.Quota, MaxAgeSecs: int64(pol.MaxAge / time.Second),
	})
}

// tenantUsage sums a tenant's entry count and logical bytes.
func (sv *Server) tenantUsage(tenant string) (entries int, logical int64) {
	prefix := tenantPrefix(tenant)
	for _, e := range sv.store.Entries() {
		if strings.HasPrefix(e.Key, prefix) {
			entries++
			logical += sv.store.LogicalSize(&e)
		}
	}
	return entries, logical
}

func (sv *Server) handleEntries(w http.ResponseWriter, r *http.Request, tenant string, _ Tenant) {
	prefix := tenantPrefix(tenant)
	out := []store.Entry{}
	for _, e := range sv.store.Entries() {
		if strings.HasPrefix(e.Key, prefix) {
			e.Key = strings.TrimPrefix(e.Key, prefix)
			out = append(out, e)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// artifactInfo builds the download manifest for one entry.
func (sv *Server) artifactInfo(e *store.Entry, tenant string) (*ArtifactInfo, error) {
	top, err := sv.store.ReadObject(e.Object)
	if err != nil {
		return nil, err
	}
	refs, err := store.ChunkRefsOf(top)
	if err != nil {
		return nil, err
	}
	info := &ArtifactInfo{Entry: *e, Top: make(map[string]int64, len(top))}
	info.Entry.Key = strings.TrimPrefix(e.Key, tenantPrefix(tenant))
	for name, data := range top {
		info.Top[name] = int64(len(data))
	}
	seen := make(map[string]bool)
	for _, id := range refs {
		if seen[id] {
			continue
		}
		seen[id] = true
		part, err := sv.store.ReadObject(id)
		if err != nil {
			return nil, err
		}
		info.Chunks = append(info.Chunks, BlobRef{ID: id, Size: int64(len(part["chunk"]))})
	}
	return info, nil
}

func (sv *Server) handleArtifact(w http.ResponseWriter, r *http.Request, tenant string, _ Tenant) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid key"))
		return
	}
	e, ok := sv.store.Stat(tenantPrefix(tenant) + key)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no artifact %s", key))
		return
	}
	// Content-hash ETag: a client holding the same object ID transfers
	// zero bytes.
	etag := `"` + e.Object + `"`
	w.Header().Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	info, err := sv.artifactInfo(e, tenant)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (sv *Server) handleArtifactFile(w http.ResponseWriter, r *http.Request, tenant string, _ Tenant) {
	key, name := r.PathValue("key"), r.PathValue("name")
	if !validKey(key) || name != filepath.Base(name) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid key or member name"))
		return
	}
	e, ok := sv.store.Stat(tenantPrefix(tenant) + key)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no artifact %s", key))
		return
	}
	top, err := sv.store.ReadObject(e.Object)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	data, ok := top[name]
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("artifact %s has no member %s", key, name))
		return
	}
	// ServeContent supplies Range, If-Range, and If-None-Match semantics
	// over the in-memory member; the ETag pins the exact object+member.
	w.Header().Set("ETag", `"`+e.Object+`:`+name+`"`)
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(w, r, name, e.CreatedAt, bytes.NewReader(data))
}

// tenantChunks returns the set of chunk object IDs the tenant's entries
// currently reference. Chunk objects dedup across tenants on disk, but the
// namespace model promises names *and their content* stay per-tenant — so
// raw chunk reads are scoped to this set, and in closed-tenant mode so is
// the upload negotiation's "already have it" shortcut. The set is cached
// per tenant against a signature of its (key, object) pairs; any index
// change recomputes it.
func (sv *Server) tenantChunks(tenant string) map[string]bool {
	prefix := tenantPrefix(tenant)
	var objects []string
	h := sha256.New()
	for _, e := range sv.store.Entries() {
		if !strings.HasPrefix(e.Key, prefix) {
			continue
		}
		objects = append(objects, e.Object)
		io.WriteString(h, e.Key)
		h.Write([]byte{0})
		io.WriteString(h, e.Object)
		h.Write([]byte{0})
	}
	sig := string(h.Sum(nil))
	sv.chunkMu.Lock()
	defer sv.chunkMu.Unlock()
	if cs := sv.chunkSets[tenant]; cs != nil && cs.sig == sig {
		return cs.ids
	}
	ids := make(map[string]bool)
	for _, obj := range objects {
		for _, id := range sv.store.ChunkRefs(obj) {
			ids[id] = true
		}
	}
	sv.chunkSets[tenant] = &chunkSet{sig: sig, ids: ids}
	return ids
}

func (sv *Server) handleObject(w http.ResponseWriter, r *http.Request, tenant string, _ Tenant) {
	id := r.PathValue("id")
	// Serve only chunks this tenant's own artifacts reference: a hash
	// leaked (or guessed) from another namespace must not read out its
	// checkpoint pages. Unauthorized and absent are indistinguishable —
	// both 404 — so the endpoint leaks no cross-tenant presence either.
	if !sv.tenantChunks(tenant)[id] {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no chunk %.12s", id))
		return
	}
	files, err := sv.store.ReadObject(id)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	data, ok := files["chunk"]
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("object %s is not a chunk", id))
		return
	}
	w.Header().Set("ETag", `"`+id+`"`)
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(w, r, id, time.Time{}, bytes.NewReader(data))
}

// uploadDir is one upload session's durable staging directory.
func (sv *Server) uploadDir(tenant, id string) string {
	return filepath.Join(sv.store.Root(), "uploads", tenant, id)
}

// uploadGrace is how long an upload session may sit idle before a tenant GC
// treats it as abandoned. Every staged blob renames a file into the session
// directory and refreshes its mtime, so an actively resumed upload is never
// at risk — only sessions nobody has touched for this long.
const uploadGrace = time.Hour

// stagedBytes sums the tenant's staged upload blobs across all sessions —
// bytes parked on the server that no committed entry accounts for yet.
func (sv *Server) stagedBytes(tenant string) int64 {
	var n int64
	filepath.Walk(filepath.Join(sv.store.Root(), "uploads", tenant),
		func(_ string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() {
				n += info.Size()
			}
			return nil
		})
	return n
}

// loadManifest reads an upload session's manifest; ok=false if the session
// does not exist.
func (sv *Server) loadManifest(tenant, id string) (*UploadManifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(sv.uploadDir(tenant, id), "manifest.json"))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var man UploadManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, false, fmt.Errorf("upload %s: damaged manifest: %v", id, err)
	}
	return &man, true, nil
}

// uploadNeeds computes what an upload session still lacks: declared wire
// blobs without a staged file, and declared chunk objects neither staged
// nor already in the store — the dedup negotiation that makes re-uploads
// ship only new content.
func (sv *Server) uploadNeeds(tenant, id string, man *UploadManifest) UploadStatus {
	st := UploadStatus{ID: id}
	dir := sv.uploadDir(tenant, id)
	staged := func(blob string) bool {
		_, err := os.Stat(filepath.Join(dir, "b-"+blob))
		return err == nil
	}
	seen := make(map[string]bool)
	for _, plan := range man.Top {
		for _, b := range plan.Blobs {
			if !seen[b.ID] && !staged(b.ID) {
				st.NeedBlobs = append(st.NeedBlobs, b.ID)
			}
			seen[b.ID] = true
		}
	}
	// In closed-tenant mode the "already in the store" shortcut is scoped
	// to chunks this tenant already references: acknowledging another
	// tenant's chunk would let an uploader probe cross-tenant content
	// presence by hash. The unauthorized chunk is simply requested — and
	// dedups on disk anyway when it arrives. Open mode keeps the global
	// shortcut (tenants are accounting namespaces there, not a
	// confidentiality boundary).
	var authorized map[string]bool
	if len(sv.opts.Tenants) > 0 {
		authorized = sv.tenantChunks(tenant)
	}
	for _, c := range man.Chunks {
		have := staged(c.ID) ||
			(sv.store.HasObject(c.ID) && (authorized == nil || authorized[c.ID]))
		if !seen[c.ID] && !have {
			st.NeedChunks = append(st.NeedChunks, c.ID)
		}
		seen[c.ID] = true
	}
	return st
}

// validateManifest rejects malformed declarations before any bytes move.
func validateManifest(man *UploadManifest) error {
	if !validKey(man.Key) {
		return fmt.Errorf("invalid key %q", man.Key)
	}
	if man.Kind == "" {
		return fmt.Errorf("missing kind")
	}
	if len(man.Object) != 64 {
		return fmt.Errorf("invalid object id")
	}
	if len(man.Top) == 0 {
		return fmt.Errorf("empty top file set")
	}
	for name, plan := range man.Top {
		if name != filepath.Base(name) || name == "" {
			return fmt.Errorf("invalid member name %q", name)
		}
		var total int64
		for _, b := range plan.Blobs {
			if len(b.ID) != 64 || b.Size < 0 {
				return fmt.Errorf("member %s: invalid blob ref", name)
			}
			total += b.Size
		}
		if total != plan.Size {
			return fmt.Errorf("member %s: blobs sum to %d, size says %d", name, total, plan.Size)
		}
	}
	for _, c := range man.Chunks {
		if len(c.ID) != 64 || c.Size < 0 {
			return fmt.Errorf("invalid chunk ref")
		}
	}
	return nil
}

func (sv *Server) handleUploadOpen(w http.ResponseWriter, r *http.Request, tenant string, pol Tenant) {
	var man UploadManifest
	if err := json.NewDecoder(io.LimitReader(r.Body, sv.opts.MaxBlob)).Decode(&man); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("manifest: %v", err))
		return
	}
	if err := validateManifest(&man); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id := uploadID(tenant, man.Key, man.Object)
	// Already stored with this exact content? The whole transfer is moot.
	if e, ok := sv.store.Stat(tenantPrefix(tenant) + man.Key); ok && e.Object == man.Object {
		writeJSON(w, http.StatusOK, UploadStatus{ID: id, Committed: true})
		return
	}
	// Admission control up front: reject an upload that cannot fit, before
	// the client ships a single byte.
	if err := sv.quotaCheck(tenant, pol, &man); err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, err)
		return
	}

	sv.upMu.Lock()
	defer sv.upMu.Unlock()
	dir := sv.uploadDir(tenant, id)
	if existing, ok, err := sv.loadManifest(tenant, id); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	} else if !ok {
		// Fresh session: persist the manifest durably before acknowledging,
		// journal-style — a server killed after the ack still knows the
		// session on restart.
		if err := os.MkdirAll(dir, 0o755); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		data, _ := json.MarshalIndent(&man, "", " ")
		if err := atomicWrite(filepath.Join(dir, "manifest.json"), data); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	} else if existing.Object != man.Object {
		// Deterministic IDs make this unreachable unless hashes collide or
		// a client lies; refuse rather than mix two artifacts' blobs.
		writeErr(w, http.StatusConflict, fmt.Errorf("upload %s already open for object %s", id, existing.Object))
		return
	}
	writeJSON(w, http.StatusOK, sv.uploadNeeds(tenant, id, &man))
}

// quotaCheck admits an incoming artifact against the tenant's byte quota.
// Replacing an existing key frees that key's logical bytes first.
func (sv *Server) quotaCheck(tenant string, pol Tenant, man *UploadManifest) error {
	if pol.Quota <= 0 {
		return nil
	}
	var incoming int64
	for name, plan := range man.Top {
		if name != "chunks.json" {
			incoming += plan.Size
		}
	}
	for _, c := range man.Chunks {
		incoming += c.Size
	}
	_, used := sv.tenantUsage(tenant)
	if e, ok := sv.store.Stat(tenantPrefix(tenant) + man.Key); ok {
		used -= sv.store.LogicalSize(e)
	}
	if used+incoming > pol.Quota {
		return fmt.Errorf("tenant %s over quota: %d used + %d incoming > %d",
			tenant, used, incoming, pol.Quota)
	}
	return nil
}

func (sv *Server) handleUploadStatus(w http.ResponseWriter, r *http.Request, tenant string, _ Tenant) {
	id := r.PathValue("id")
	man, ok, err := sv.loadManifest(tenant, id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no upload %s", id))
		return
	}
	writeJSON(w, http.StatusOK, sv.uploadNeeds(tenant, id, man))
}

func (sv *Server) handleUploadBlob(w http.ResponseWriter, r *http.Request, tenant string, pol Tenant) {
	id, blob := r.PathValue("id"), r.PathValue("blob")
	man, ok, err := sv.loadManifest(tenant, id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no upload %s", id))
		return
	}
	isChunk, declared := blobRole(man, blob)
	if !declared {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("blob %s not declared by upload %s", blob, id))
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, sv.opts.MaxBlob+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if int64(len(data)) > sv.opts.MaxBlob {
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("blob exceeds %d bytes", sv.opts.MaxBlob))
		return
	}
	// Hash-verify on receipt: a corrupt blob is rejected at the door, in
	// the hash domain its role demands.
	if isChunk {
		if store.ObjectID(store.FileSet{"chunk": data}) != blob {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("chunk %s does not hash to its id", blob))
			return
		}
	} else if blobID(data) != blob {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("blob %s does not hash to its id", blob))
		return
	}
	// Staged bytes are charged against the quota as they land, not only at
	// upload-open: otherwise a tenant could park unbounded never-committed
	// blobs across many sessions. Replacing an existing key frees that
	// key's logical bytes, mirroring quotaCheck's admission.
	if pol.Quota > 0 {
		_, used := sv.tenantUsage(tenant)
		if e, ok := sv.store.Stat(tenantPrefix(tenant) + man.Key); ok {
			used -= sv.store.LogicalSize(e)
		}
		if used+sv.stagedBytes(tenant)+int64(len(data)) > pol.Quota {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("tenant %s over quota: staged upload bytes would exceed %d", tenant, pol.Quota))
			return
		}
	}
	// Stage atomically and durably: rename guarantees a half-written blob
	// is never counted as present, fsync guarantees a counted blob
	// survives a server kill.
	if err := atomicWrite(filepath.Join(sv.uploadDir(tenant, id), "b-"+blob), data); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// blobRole reports whether an ID is declared by the manifest and whether it
// is a store chunk object (vs a wire blob of a top member).
func blobRole(man *UploadManifest, id string) (isChunk, declared bool) {
	for _, c := range man.Chunks {
		if c.ID == id {
			return true, true
		}
	}
	for _, plan := range man.Top {
		for _, b := range plan.Blobs {
			if b.ID == id {
				return false, true
			}
		}
	}
	return false, false
}

func (sv *Server) handleUploadCommit(w http.ResponseWriter, r *http.Request, tenant string, pol Tenant) {
	id := r.PathValue("id")
	sv.upMu.Lock()
	defer sv.upMu.Unlock()
	man, ok, err := sv.loadManifest(tenant, id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		// The session may be gone because an earlier commit succeeded and a
		// crashed client never saw the ack; the stored entry is the truth.
		writeErr(w, http.StatusNotFound, fmt.Errorf("no upload %s", id))
		return
	}
	storeKey := tenantPrefix(tenant) + man.Key
	if e, ok := sv.store.Stat(storeKey); ok && e.Object == man.Object {
		os.RemoveAll(sv.uploadDir(tenant, id))
		writeJSON(w, http.StatusOK, e)
		return
	}
	if st := sv.uploadNeeds(tenant, id, man); len(st.NeedBlobs) > 0 || len(st.NeedChunks) > 0 {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("upload %s incomplete: %d blobs, %d chunks missing",
				id, len(st.NeedBlobs), len(st.NeedChunks)))
		return
	}
	if err := sv.quotaCheck(tenant, pol, man); err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, err)
		return
	}

	dir := sv.uploadDir(tenant, id)
	top := make(store.FileSet, len(man.Top))
	for name, plan := range man.Top {
		buf := make([]byte, 0, plan.Size)
		for _, b := range plan.Blobs {
			part, err := os.ReadFile(filepath.Join(dir, "b-"+b.ID))
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			buf = append(buf, part...)
		}
		top[name] = buf
	}
	// The assembled top must hash to the declared object — the same
	// end-to-end integrity check the store applies on every read.
	if got := store.ObjectID(top); got != man.Object {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("assembled object hashes to %.12s, manifest declared %.12s", got, man.Object))
		return
	}
	chunks := make(map[string][]byte)
	for _, c := range man.Chunks {
		data, err := os.ReadFile(filepath.Join(dir, "b-"+c.ID))
		if os.IsNotExist(err) {
			continue // already in the store; PutAssembled checks
		}
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		chunks[c.ID] = data
	}
	e, err := sv.store.PutAssembled(storeKey, man.Kind, top, chunks)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	os.RemoveAll(dir)
	writeJSON(w, http.StatusOK, e)
}

func (sv *Server) handleVerify(w http.ResponseWriter, r *http.Request, tenant string, _ Tenant) {
	lint := sv.opts.Lint && r.URL.Query().Get("lint") != "0"
	rep, err := sv.store.VerifyWith(store.VerifyOptions{Lint: lint, KeyPrefix: tenantPrefix(tenant)})
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	out := VerifyReport{
		Checked: rep.Checked, Pinballs: rep.Pinballs, Unverified: rep.Unverified,
		Linted: rep.Linted, Chunked: rep.Chunked, Checkpoints: rep.Checkpoints,
	}
	for _, p := range rep.Problems {
		out.Problems = append(out.Problems, Problem{
			Key:    strings.TrimPrefix(p.Key, tenantPrefix(tenant)),
			Object: p.Object, Err: p.Err.Error(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (sv *Server) handleGC(w http.ResponseWriter, r *http.Request, tenant string, pol Tenant) {
	res := GCResult{}
	// Tenant policy first: expire this namespace's stale entries without
	// touching anyone else's.
	if pol.MaxAge > 0 {
		cutoff := time.Now().UTC().Add(-pol.MaxAge)
		prefix := tenantPrefix(tenant)
		for _, e := range sv.store.Entries() {
			if strings.HasPrefix(e.Key, prefix) && e.LastUsed.Before(cutoff) {
				if err := sv.store.Delete(e.Key); err != nil {
					writeStoreErr(w, err)
					return
				}
				res.ExpiredEntries++
			}
		}
	}
	// Then the store-wide orphan sweep reclaims whatever those expirations
	// (and everyone's past deletes) unreferenced.
	rep, err := sv.store.GC(store.GCOptions{})
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	res.OrphanObjects = rep.OrphanObjects
	res.TmpDebris = rep.TmpDebris
	res.BytesReclaimed = rep.BytesReclaimed
	// Abandoned upload sessions: opened, never committed, idle past the
	// grace. An active session's directory mtime refreshes on every staged
	// blob, so the age gate only catches uploads nobody will resume — the
	// same rule the store applies to tmp/ staging debris.
	updir := filepath.Join(sv.store.Root(), "uploads", tenant)
	if sessions, err := os.ReadDir(updir); err == nil {
		for _, sess := range sessions {
			info, err := sess.Info()
			if err != nil || time.Since(info.ModTime()) < uploadGrace {
				continue
			}
			sv.upMu.Lock()
			err = os.RemoveAll(filepath.Join(updir, sess.Name()))
			sv.upMu.Unlock()
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			res.StaleUploads++
		}
	}
	writeJSON(w, http.StatusOK, res)
}

// atomicWrite stages data beside path and renames it into place, fsyncing
// first — the same torn-write discipline as the store and the farm journal.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".part"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// writeStoreErr maps store failures onto HTTP: integrity failures are 422
// (the content is damaged, retrying won't help), everything else is a 500.
func writeStoreErr(w http.ResponseWriter, err error) {
	if errors.Is(err, store.ErrCorrupt) {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeErr(w, http.StatusInternalServerError, err)
}
