// Package registry serves a content-addressed checkpoint store over HTTP,
// turning the pipeline's pinballs, ELFies, and mid-run checkpoints into
// distributable artifacts: one machine's farm produces them, any other
// machine's validation or simulation runs pull them — no manual artifact
// shuffling, and a warm client transfers zero bytes.
//
// The wire protocol leans entirely on the store's content addressing:
//
//   - Artifacts travel in their *stored representation* — the top object
//     plus the page-chunk objects its manifest references — so content
//     addresses survive the network unchanged and a pulled artifact is
//     byte-identical (same object ID) to the pushed one.
//   - Upload is negotiated: the client declares every blob it intends to
//     send, the server answers with the subset it is missing, and only
//     those move. Re-pushing a near-identical checkpoint ships only the
//     pages it dirtied; resuming a killed push re-sends zero completed
//     chunks. Upload state is durable on the server (journal-style temp
//     files keyed by a deterministic upload ID), so resume survives SIGKILL
//     of either side.
//   - Reads carry content-hash ETags (If-None-Match answers 304 with zero
//     bytes) and honor HTTP Range, so an interrupted download continues
//     from its last byte.
//   - Namespaces are per-tenant path prefixes with byte quotas and a GC
//     age policy, layered over the store's index and GC.
//
// Endpoints (all JSON unless noted):
//
//	GET  /v1/ping                                    liveness + protocol version
//	GET  /v1/t/{tenant}                              tenant status (usage, quota)
//	GET  /v1/t/{tenant}/entries                      index listing
//	GET  /v1/t/{tenant}/artifacts/{key}              artifact manifest (ETag: object)
//	GET  /v1/t/{tenant}/artifacts/{key}/files/{name} raw top member (Range, ETag)
//	GET  /v1/t/{tenant}/objects/{id}                 raw chunk object (Range, ETag)
//	POST /v1/t/{tenant}/uploads                      open/resume an upload (manifest in, needs out)
//	GET  /v1/t/{tenant}/uploads/{id}                 upload status (remaining needs)
//	PUT  /v1/t/{tenant}/uploads/{id}/blobs/{blob}    one blob or chunk (bytes, hash-verified)
//	POST /v1/t/{tenant}/uploads/{id}/commit          assemble, verify, store; entry out
//	POST /v1/t/{tenant}/verify?lint=1                server-side deep verify (store.VerifyWith)
//	POST /v1/t/{tenant}/gc                           tenant-policy GC + orphan sweep
package registry

import (
	"crypto/sha256"
	"encoding/hex"

	"elfie/internal/store"
)

// ProtocolVersion is bumped on incompatible wire changes; ping reports it
// so mismatched clients fail fast instead of misparsing.
const ProtocolVersion = 1

// DefaultTenant is the namespace used when a client does not name one.
const DefaultTenant = "default"

// DefaultWireChunk is how finely top-object members are split into wire
// blobs for resumable upload: big enough to amortize per-request overhead,
// small enough that a killed transfer loses little.
const DefaultWireChunk = 64 << 10

// BlobRef names one transferable unit: ID is the hex SHA-256 of the raw
// bytes for wire blobs, or the store content address for chunk objects.
type BlobRef struct {
	ID   string `json:"id"`
	Size int64  `json:"size"`
}

// MemberPlan is how one top-object member travels: split into wire blobs,
// concatenated in order on the far side.
type MemberPlan struct {
	Size  int64     `json:"size"`
	Blobs []BlobRef `json:"blobs"`
}

// UploadManifest is the client's opening declaration: the artifact's
// identity and every blob that reassembles it. POSTing the same manifest
// again reattaches to the same upload (the upload ID is a deterministic
// function of tenant, key, and object), which is what makes resume free.
type UploadManifest struct {
	Key  string `json:"key"`
	Kind string `json:"kind"`
	// Object is the top object's content address; commit fails unless the
	// assembled bytes hash to exactly this.
	Object string                `json:"object"`
	Top    map[string]MemberPlan `json:"top"`
	// Chunks are the store chunk objects the top's manifest references,
	// transferred whole under their content addresses.
	Chunks []BlobRef `json:"chunks"`
}

// UploadStatus is the server's answer: what it still needs. An empty need
// set means the client can commit immediately.
type UploadStatus struct {
	ID string `json:"id"`
	// NeedBlobs / NeedChunks list the IDs not yet present server-side —
	// everything else is already staged or already in the store and must
	// not be re-sent.
	NeedBlobs  []string `json:"need_blobs,omitempty"`
	NeedChunks []string `json:"need_chunks,omitempty"`
	// Committed reports the artifact is already stored with this exact
	// object ID; the transfer is a no-op.
	Committed bool `json:"committed,omitempty"`
}

// ArtifactInfo describes a stored artifact for download: the index entry
// (key relative to the tenant), the raw top members with their sizes, and
// the chunk objects a puller must also fetch (minus those it already has).
type ArtifactInfo struct {
	Entry store.Entry      `json:"entry"`
	Top   map[string]int64 `json:"top"`
	// Chunks lists referenced chunk objects with sizes, so a puller can
	// budget and skip ones it already holds.
	Chunks []BlobRef `json:"chunks,omitempty"`
}

// Problem is one verification failure, wire-safe (errors as strings) and
// attributed to where it was observed.
type Problem struct {
	// Source is "local" or "remote" in merged reports; servers leave it
	// empty (the client fills it in).
	Source string `json:"source,omitempty"`
	Key    string `json:"key"`
	Object string `json:"object"`
	Err    string `json:"err"`
}

// VerifyReport mirrors store.VerifyReport across the wire.
type VerifyReport struct {
	Checked     int       `json:"checked"`
	Pinballs    int       `json:"pinballs"`
	Unverified  int       `json:"unverified"`
	Linted      int       `json:"linted"`
	Chunked     int       `json:"chunked"`
	Checkpoints int       `json:"checkpoints"`
	Problems    []Problem `json:"problems,omitempty"`
}

// OK reports whether the scan found no problems.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

// GCResult reports one tenant-policy collection.
type GCResult struct {
	ExpiredEntries int `json:"expired_entries"`
	OrphanObjects  int `json:"orphan_objects"`
	TmpDebris      int `json:"tmp_debris"`
	// StaleUploads counts abandoned upload-session directories (opened,
	// never committed, idle past the grace window) the sweep removed.
	StaleUploads   int   `json:"stale_uploads,omitempty"`
	BytesReclaimed int64 `json:"bytes_reclaimed"`
}

// TenantStatus is one namespace's usage against its policy.
type TenantStatus struct {
	Name         string `json:"name"`
	Entries      int    `json:"entries"`
	LogicalBytes int64  `json:"logical_bytes"`
	QuotaBytes   int64  `json:"quota_bytes"`
	MaxAgeSecs   int64  `json:"max_age_secs"`
}

// PingResponse answers GET /v1/ping.
type PingResponse struct {
	OK      bool `json:"ok"`
	Version int  `json:"version"`
}

// errorBody is the JSON error envelope non-2xx responses carry.
type errorBody struct {
	Error string `json:"error"`
}

// blobID is the wire hash: hex SHA-256 over raw bytes. Distinct from
// store.ObjectID (which frames names and lengths); wire blobs are anonymous
// byte ranges, so the raw hash is the honest identity.
func blobID(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// uploadID derives the deterministic resume handle for one (tenant, key,
// object) transfer: a client killed mid-push re-derives the same ID and
// reattaches to the server's staged state.
func uploadID(tenant, key, object string) string {
	h := sha256.New()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(object))
	return hex.EncodeToString(h.Sum(nil))[:24]
}

// planMember splits one member into wire blobs of at most wire bytes.
func planMember(data []byte, wire int) MemberPlan {
	if wire <= 0 {
		wire = DefaultWireChunk
	}
	p := MemberPlan{Size: int64(len(data))}
	for off := 0; off < len(data); off += wire {
		end := off + wire
		if end > len(data) {
			end = len(data)
		}
		p.Blobs = append(p.Blobs, BlobRef{ID: blobID(data[off:end]), Size: int64(end - off)})
	}
	if len(data) == 0 {
		p.Blobs = append(p.Blobs, BlobRef{ID: blobID(nil), Size: 0})
	}
	return p
}
