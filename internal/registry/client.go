package registry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"elfie/internal/farm"
	"elfie/internal/store"
)

// ErrNotFound marks a key or object the registry does not hold.
var ErrNotFound = errors.New("registry: not found")

// ErrCrashed is returned once a test-configured crash point is reached —
// it simulates the client process being SIGKILLed between blob transfers,
// the exact point a resumed transfer must pick up from.
var ErrCrashed = errors.New("registry: transfer crashed (simulated)")

// ErrRemote wraps a non-retryable registry rejection (4xx).
var ErrRemote = errors.New("registry: remote rejected request")

// Client talks to one registry on behalf of one tenant. The zero value is
// not usable; set Base. All transfers are resumable: a client killed at any
// instant re-runs the same Push/Pull and moves only what is still missing.
type Client struct {
	// Base is the registry root, e.g. "http://buildhost:9535".
	Base string
	// Tenant is the namespace (DefaultTenant when empty).
	Tenant string
	// HTTP overrides the transport (default: 30s-timeout client).
	HTTP *http.Client
	// Backoff is the retry-delay policy for transient failures — the
	// farm's capped-exponential seeded-jitter policy, so a fleet of
	// clients retrying against one registry spreads out instead of
	// stampeding. Nil means no delay between retries.
	Backoff *farm.Backoff
	// Retries is attempts per request (default 4).
	Retries int
	// WireChunk is the upload blob granularity (default DefaultWireChunk).
	WireChunk int
	// CrashAfter, when positive, makes the client return ErrCrashed after
	// that many blob/chunk transfers — the test hook for killing a
	// transfer between completed units.
	CrashAfter int

	// transferred counts completed blob/chunk payload transfers (uploads
	// and downloads), the currency of resume proofs: a resumed transfer's
	// count plus the crashed one's must equal a cold transfer's.
	transferred atomic.Int64
}

// TransferStats accounts one Push or Pull.
type TransferStats struct {
	// Sent/Received count blob payloads that actually moved.
	Sent, Received int
	// Skipped counts blobs negotiation proved the far side already had.
	Skipped int
	// Bytes is the payload volume that moved.
	Bytes int64
}

// Transferred reports the client's lifetime completed payload transfers.
func (c *Client) Transferred() int64 { return c.transferred.Load() }

func (c *Client) tenant() string {
	if c.Tenant == "" {
		return DefaultTenant
	}
	return c.Tenant
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 4
}

func (c *Client) turl(parts ...string) string {
	u := c.Base + "/v1/t/" + url.PathEscape(c.tenant())
	for _, p := range parts {
		u += "/" + url.PathEscape(p)
	}
	return u
}

// bump accounts one completed payload transfer and trips the crash hook.
func (c *Client) bump() error {
	n := c.transferred.Add(1)
	if c.CrashAfter > 0 && n >= int64(c.CrashAfter) {
		return ErrCrashed
	}
	return nil
}

// do issues one request with retry: transient failures (network errors,
// 5xx) back off and retry under the farm policy; 4xx rejections and
// 404s fail immediately. body is re-sendable bytes (nil for none). The
// response body is fully read and returned.
func (c *Client) do(method, u string, hdr http.Header, body []byte) (*http.Response, []byte, error) {
	var lastErr error
	for attempt := 1; attempt <= c.retries(); attempt++ {
		if attempt > 1 && c.Backoff != nil {
			time.Sleep(c.Backoff.Delay(u, attempt-1))
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, u, rd)
		if err != nil {
			return nil, nil, err
		}
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = fmt.Errorf("%s %s: %s: %s", method, u, resp.Status, remoteError(data))
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			return resp, data, fmt.Errorf("%w: %s", ErrNotFound, remoteError(data))
		}
		if resp.StatusCode >= 400 {
			return resp, data, fmt.Errorf("%w: %s %s: %s: %s",
				ErrRemote, method, u, resp.Status, remoteError(data))
		}
		return resp, data, nil
	}
	return nil, nil, fmt.Errorf("registry: %s %s failed after %d attempts: %w",
		method, u, c.retries(), lastErr)
}

// remoteError extracts the server's JSON error envelope, falling back to
// the raw body.
func remoteError(data []byte) string {
	var eb errorBody
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	if len(data) > 200 {
		data = data[:200]
	}
	return string(data)
}

// Ping checks liveness and protocol compatibility.
func (c *Client) Ping() error {
	_, data, err := c.do("GET", c.Base+"/v1/ping", nil, nil)
	if err != nil {
		return err
	}
	var p PingResponse
	if err := json.Unmarshal(data, &p); err != nil || !p.OK {
		return fmt.Errorf("registry: bad ping response from %s", c.Base)
	}
	if p.Version != ProtocolVersion {
		return fmt.Errorf("registry: protocol version %d, client speaks %d", p.Version, ProtocolVersion)
	}
	return nil
}

// Entries lists the tenant's index.
func (c *Client) Entries() ([]store.Entry, error) {
	_, data, err := c.do("GET", c.turl("entries"), nil, nil)
	if err != nil {
		return nil, err
	}
	var out []store.Entry
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("registry: entries: %v", err)
	}
	return out, nil
}

// Stat fetches an artifact's manifest; ErrNotFound if absent. A non-empty
// haveObject is sent as If-None-Match: when the registry holds exactly that
// object, Stat returns (nil, nil) — "you are current", zero bytes moved.
func (c *Client) Stat(key, haveObject string) (*ArtifactInfo, error) {
	hdr := http.Header{}
	if haveObject != "" {
		hdr.Set("If-None-Match", `"`+haveObject+`"`)
	}
	resp, data, err := c.do("GET", c.turl("artifacts", key), hdr, nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotModified {
		return nil, nil
	}
	var info ArtifactInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return nil, fmt.Errorf("registry: artifact manifest: %v", err)
	}
	return &info, nil
}

// Status reports the tenant's usage and policy.
func (c *Client) Status() (*TenantStatus, error) {
	_, data, err := c.do("GET", c.turl(), nil, nil)
	if err != nil {
		return nil, err
	}
	var st TenantStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("registry: tenant status: %v", err)
	}
	return &st, nil
}

// Verify runs the registry's server-side deep verify over the tenant's
// namespace and returns the wire report.
func (c *Client) Verify(lint bool) (*VerifyReport, error) {
	u := c.turl("verify")
	if !lint {
		u += "?lint=0"
	}
	_, data, err := c.do("POST", u, nil, nil)
	if err != nil {
		return nil, err
	}
	var rep VerifyReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("registry: verify report: %v", err)
	}
	return &rep, nil
}

// GC runs the tenant's GC policy server-side.
func (c *Client) GC() (*GCResult, error) {
	_, data, err := c.do("POST", c.turl("gc"), nil, nil)
	if err != nil {
		return nil, err
	}
	var res GCResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("registry: gc result: %v", err)
	}
	return &res, nil
}

// Push uploads the artifact stored under key in s to the registry, in its
// stored representation (top object + referenced chunk objects), resuming
// any prior interrupted upload of the same content. Content the registry
// already holds — the whole artifact, or individual chunks shared with
// artifacts pushed before — is skipped, so a near-identical checkpoint
// costs only its dirty pages.
func (c *Client) Push(s *store.Store, key string) (*TransferStats, error) {
	top, e, ok, err := s.GetRaw(key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: no local entry %s", ErrNotFound, key)
	}
	stats := &TransferStats{}

	// Warm path: the registry already has this exact object under this key.
	if info, err := c.Stat(key, ""); err == nil && info.Entry.Object == e.Object {
		return stats, nil
	} else if err != nil && !errors.Is(err, ErrNotFound) {
		return nil, err
	}

	// Declare everything, learn what is missing.
	man := UploadManifest{Key: key, Kind: e.Kind, Object: e.Object, Top: make(map[string]MemberPlan)}
	payload := make(map[string][]byte) // blob/chunk id -> bytes
	for name, data := range top {
		plan := planMember(data, c.WireChunk)
		man.Top[name] = plan
		off := int64(0)
		for _, b := range plan.Blobs {
			payload[b.ID] = data[off : off+b.Size]
			off += b.Size
		}
	}
	refs, err := store.ChunkRefsOf(top)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, id := range refs {
		if seen[id] {
			continue
		}
		seen[id] = true
		part, err := s.ReadObject(id)
		if err != nil {
			return nil, err
		}
		man.Chunks = append(man.Chunks, BlobRef{ID: id, Size: int64(len(part["chunk"]))})
		payload[id] = part["chunk"]
	}

	manBytes, err := json.Marshal(&man)
	if err != nil {
		return nil, err
	}
	_, data, err := c.do("POST", c.turl("uploads"), nil, manBytes)
	if err != nil {
		return nil, err
	}
	var st UploadStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("registry: upload status: %v", err)
	}
	if st.Committed {
		return stats, nil
	}
	need := append(append([]string{}, st.NeedBlobs...), st.NeedChunks...)
	stats.Skipped = len(payload) - len(need)

	// Ship only the missing units; each PUT is individually retried, and
	// the crash hook fires between completed units — exactly where a real
	// SIGKILL would leave a resumable boundary.
	for _, id := range need {
		data, ok := payload[id]
		if !ok {
			return nil, fmt.Errorf("registry: server needs undeclared blob %s", id)
		}
		if _, _, err := c.do("PUT", c.turl("uploads", st.ID, "blobs", id), nil, data); err != nil {
			return nil, err
		}
		stats.Sent++
		stats.Bytes += int64(len(data))
		if err := c.bump(); err != nil {
			return stats, err
		}
	}

	_, data, err = c.do("POST", c.turl("uploads", st.ID, "commit"), nil, nil)
	if err != nil {
		return nil, err
	}
	var committed store.Entry
	if err := json.Unmarshal(data, &committed); err != nil {
		return nil, fmt.Errorf("registry: commit response: %v", err)
	}
	if committed.Object != e.Object {
		return nil, fmt.Errorf("registry: committed object %.12s, pushed %.12s",
			committed.Object, e.Object)
	}
	return stats, nil
}

// Pull downloads the artifact under key into s, in its stored
// representation, resuming any prior interrupted download: completed
// chunks are never re-fetched (they are already local objects), and a
// partially-downloaded top member continues from its last byte via an HTTP
// Range request. A local entry already holding the registry's object
// transfers zero bytes.
func (c *Client) Pull(s *store.Store, key string) (*store.Entry, *TransferStats, error) {
	stats := &TransferStats{}
	var have string
	if local, ok := s.Stat(key); ok {
		have = local.Object
	}
	info, err := c.Stat(key, have)
	if err != nil {
		return nil, nil, err
	}
	if info == nil { // 304: local copy is current
		local, _ := s.Stat(key)
		return local, stats, nil
	}
	// The manifest is server-supplied and its names become client-side
	// filesystem paths below — a malicious or compromised registry must
	// not be able to smuggle a traversal like "../../x" into the stage
	// (the server applies the same gates on its side of every transfer).
	for name := range info.Top {
		if name == "" || name != filepath.Base(name) {
			return nil, stats, fmt.Errorf("%w: registry sent unsafe member name %q",
				store.ErrCorrupt, name)
		}
	}
	for _, ref := range info.Chunks {
		if !store.ValidObjectID(ref.ID) {
			return nil, stats, fmt.Errorf("%w: registry sent invalid chunk id %q",
				store.ErrCorrupt, ref.ID)
		}
	}

	// Durable stage: a pull killed at any instant resumes from what this
	// directory already holds.
	stage := filepath.Join(s.Root(), "xfer", "pull-"+uploadID(c.tenant(), key, info.Entry.Object))
	if err := os.MkdirAll(stage, 0o755); err != nil {
		return nil, nil, err
	}

	top := make(store.FileSet, len(info.Top))
	for name, size := range info.Top {
		data, err := c.fetchMember(stage, key, name, size, stats)
		if err != nil {
			return nil, stats, err
		}
		top[name] = data
	}
	if got := store.ObjectID(top); got != info.Entry.Object {
		// Stale stage from an artifact that changed server-side mid-pull;
		// self-heal by wiping and refusing (the caller's retry starts clean).
		os.RemoveAll(stage)
		return nil, stats, fmt.Errorf("%w: pulled object hashes to %.12s, registry declared %.12s",
			store.ErrCorrupt, got, info.Entry.Object)
	}

	chunks := make(map[string][]byte)
	for _, ref := range info.Chunks {
		if s.HasObject(ref.ID) {
			stats.Skipped++
			continue // incremental pull: shared pages already local
		}
		cpath := filepath.Join(stage, "c-"+ref.ID)
		if data, err := os.ReadFile(cpath); err == nil &&
			store.ObjectID(store.FileSet{"chunk": data}) == ref.ID {
			chunks[ref.ID] = data // staged by the interrupted pull
			stats.Skipped++
			continue
		}
		_, data, err := c.do("GET", c.turl("objects", ref.ID), nil, nil)
		if err != nil {
			return nil, stats, err
		}
		if store.ObjectID(store.FileSet{"chunk": data}) != ref.ID {
			return nil, stats, fmt.Errorf("%w: chunk %.12s arrived damaged", store.ErrCorrupt, ref.ID)
		}
		if err := atomicWrite(cpath, data); err != nil {
			return nil, stats, err
		}
		chunks[ref.ID] = data
		stats.Received++
		stats.Bytes += int64(len(data))
		if err := c.bump(); err != nil {
			return nil, stats, err
		}
	}

	e, err := s.PutAssembled(key, info.Entry.Kind, top, chunks)
	if err != nil {
		return nil, stats, err
	}
	os.RemoveAll(stage)
	return e, stats, nil
}

// fetchMember downloads one top member in wire-chunk-sized Range requests,
// appending each completed piece to a durable staged file — so a client
// killed mid-member resumes from exactly the bytes it already has, and
// pieces staged by an earlier interrupted pull never re-cross the network.
func (c *Client) fetchMember(stage, key, name string, size int64, stats *TransferStats) ([]byte, error) {
	path := filepath.Join(stage, "m-"+name)
	buf, _ := os.ReadFile(path)
	if int64(len(buf)) == size {
		if size > 0 {
			stats.Skipped++
		}
		return buf, nil
	}
	if int64(len(buf)) > size {
		buf = nil // stale stage from a different version; start over
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	} else if len(buf) > 0 {
		stats.Skipped++ // partial progress an interrupted pull left behind
	}
	wire := c.WireChunk
	if wire <= 0 {
		wire = DefaultWireChunk
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	for int64(len(buf)) < size {
		end := int64(len(buf)) + int64(wire)
		if end > size {
			end = size
		}
		hdr := http.Header{}
		hdr.Set("Range", fmt.Sprintf("bytes=%d-%d", len(buf), end-1))
		resp, data, err := c.do("GET", c.turl("artifacts", key, "files", name), hdr, nil)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusPartialContent {
			// Server ignored the range and sent everything: take it whole.
			if int64(len(data)) != size {
				return nil, fmt.Errorf("%w: member %s arrived %d bytes, manifest says %d",
					store.ErrCorrupt, name, len(data), size)
			}
			if err := f.Truncate(0); err != nil {
				return nil, err
			}
			buf = nil
			data = data[:size]
		}
		if _, err := f.Write(data); err != nil {
			return nil, err
		}
		if err := f.Sync(); err != nil {
			return nil, err
		}
		buf = append(buf, data...)
		stats.Received++
		stats.Bytes += int64(len(data))
		if err := c.bump(); err != nil {
			return nil, err
		}
	}
	if int64(len(buf)) != size {
		return nil, fmt.Errorf("%w: member %s assembled to %d bytes, manifest says %d",
			store.ErrCorrupt, name, len(buf), size)
	}
	return buf, nil
}
