package registry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"elfie/internal/store"
)

// transferLog wraps the registry handler and records every payload
// transfer, so tests can prove "zero re-sent chunks" structurally: a blob
// PUT or chunk GET that repeats is a protocol failure, not just waste.
type transferLog struct {
	next http.Handler

	mu       sync.Mutex
	blobPuts map[string]int // blob id -> times received
	objGets  map[string]int // chunk object id -> times served
}

func newTransferLog(next http.Handler) *transferLog {
	return &transferLog{next: next, blobPuts: make(map[string]int), objGets: make(map[string]int)}
}

func (l *transferLog) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(r.URL.Path, "/")
	last := parts[len(parts)-1]
	l.mu.Lock()
	if r.Method == http.MethodPut && len(parts) >= 2 && parts[len(parts)-2] == "blobs" {
		l.blobPuts[last]++
	}
	if r.Method == http.MethodGet && len(parts) >= 2 && parts[len(parts)-2] == "objects" {
		l.objGets[last]++
	}
	l.mu.Unlock()
	l.next.ServeHTTP(w, r)
}

func (l *transferLog) duplicates() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var dups []string
	for id, n := range l.blobPuts {
		if n > 1 {
			dups = append(dups, fmt.Sprintf("blob %s put %d times", id[:12], n))
		}
	}
	for id, n := range l.objGets {
		if n > 1 {
			dups = append(dups, fmt.Sprintf("chunk %s fetched %d times", id[:12], n))
		}
	}
	return dups
}

// testRegistry spins up a registry server over a fresh store.
func testRegistry(t *testing.T, opts ServerOptions) (*store.Store, *transferLog, *httptest.Server) {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tl := newTransferLog(NewServer(s, opts).Handler())
	srv := httptest.NewServer(tl)
	t.Cleanup(srv.Close)
	return s, tl, srv
}

func testClient(srv *httptest.Server, tenant string) *Client {
	return &Client{Base: srv.URL, Tenant: tenant, WireChunk: 256, Retries: 2}
}

func localStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// corruptObjectFile flips bytes inside one stored object's largest member
// file, simulating on-disk rot under the server.
func corruptObjectFile(t *testing.T, root, object string) {
	t.Helper()
	dir := filepath.Join(root, "objects", object[:2], object)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	var best int64 = -1
	for _, de := range ents {
		info, err := de.Info()
		if err != nil || de.IsDir() {
			continue
		}
		if info.Size() > best {
			best, victim = info.Size(), filepath.Join(dir, de.Name())
		}
	}
	if victim == "" {
		t.Fatalf("object %s has no files to corrupt", object)
	}
	if err := os.WriteFile(victim, []byte("rotten bits"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// checkpointLike builds a file set shaped like a mid-run checkpoint: a big
// chunkable memory image plus small inline members.
func checkpointLike(pages int, stamp byte) store.FileSet {
	mem := make([]byte, pages*128)
	for i := range mem {
		mem[i] = byte(i/128) ^ stamp
	}
	return store.FileSet{
		"mem":  mem,
		"meta": []byte(fmt.Sprintf("checkpoint stamp=%d", stamp)),
	}
}

func TestPushPullRoundTrip(t *testing.T) {
	_, _, srv := testRegistry(t, ServerOptions{})
	a, b := localStore(t), localStore(t)
	c := testClient(srv, "")

	// One plain object, one chunked checkpoint.
	plain := store.FileSet{"elfie.bin": bytes.Repeat([]byte("ELFIE"), 400), "region.json": []byte(`{"r":1}`)}
	ePlain, err := a.Put("region-1", "region", plain)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := checkpointLike(40, 0)
	eCkpt, err := a.PutChunked("ckpt-1", "checkpoint", ckpt, 128)
	if err != nil {
		t.Fatal(err)
	}

	for _, key := range []string{"region-1", "ckpt-1"} {
		if _, err := c.Push(a, key); err != nil {
			t.Fatalf("push %s: %v", key, err)
		}
	}
	for _, key := range []string{"region-1", "ckpt-1"} {
		if _, _, err := c.Pull(b, key); err != nil {
			t.Fatalf("pull %s: %v", key, err)
		}
	}

	// Byte-identical across stores, same content addresses.
	gotPlain, e2, ok, err := b.Get("region-1")
	if err != nil || !ok {
		t.Fatalf("b.Get(region-1): ok=%v err=%v", ok, err)
	}
	if e2.Object != ePlain.Object {
		t.Fatalf("plain object id changed across the wire: %s vs %s", e2.Object, ePlain.Object)
	}
	for name, data := range plain {
		if !bytes.Equal(gotPlain[name], data) {
			t.Fatalf("member %s differs after round trip", name)
		}
	}
	gotCkpt, e3, ok, err := b.Get("ckpt-1")
	if err != nil || !ok {
		t.Fatalf("b.Get(ckpt-1): ok=%v err=%v", ok, err)
	}
	if e3.Object != eCkpt.Object {
		t.Fatalf("chunked object id changed across the wire: %s vs %s", e3.Object, eCkpt.Object)
	}
	if !bytes.Equal(gotCkpt["mem"], ckpt["mem"]) {
		t.Fatal("chunked member differs after round trip")
	}
	// The receiving store passes its own deep verification.
	rep, err := b.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("verify pulled store: err=%v problems=%v", err, rep.Problems)
	}
}

// TestSecondPushShipsOnlyDirtyPages is the page-dedup promise over the
// wire: a near-identical checkpoint re-pushes only the chunks it changed.
func TestSecondPushShipsOnlyDirtyPages(t *testing.T) {
	_, _, srv := testRegistry(t, ServerOptions{})
	a := localStore(t)
	c := testClient(srv, "")

	base := checkpointLike(64, 0)
	if _, err := a.PutChunked("ckpt-1", "checkpoint", base, 128); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(a, "ckpt-1"); err != nil {
		t.Fatal(err)
	}

	// Dirty exactly 3 pages.
	next := store.FileSet{"mem": append([]byte(nil), base["mem"]...), "meta": base["meta"]}
	for _, page := range []int{3, 17, 41} {
		copy(next["mem"][page*128:(page+1)*128], bytes.Repeat([]byte{0xAB}, 128))
	}
	if _, err := a.PutChunked("ckpt-2", "checkpoint", next, 128); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Push(a, "ckpt-2")
	if err != nil {
		t.Fatal(err)
	}
	// What must move: the 3 dirty chunk objects plus the new top object
	// (chunks.json changed, so its wire blobs are new). The 61 clean pages
	// — the bulk of the checkpoint — must not cross the wire again.
	if stats.Skipped < 61 {
		t.Fatalf("second push skipped only %d chunk objects; dedup negotiation failed", stats.Skipped)
	}
	top2, _, _, err := a.GetRaw("ckpt-2")
	if err != nil {
		t.Fatal(err)
	}
	var topBytes int64
	for _, data := range top2 {
		topBytes += int64(len(data))
	}
	if max := 3*128 + topBytes; stats.Bytes > max {
		t.Fatalf("second push moved %d bytes, want at most %d (3 dirty pages + top object)",
			stats.Bytes, max)
	}
}

// TestWarmTransfersAreZero: pushing content the registry holds, or pulling
// content the local store holds, moves no payload at all.
func TestWarmTransfersAreZero(t *testing.T) {
	_, tl, srv := testRegistry(t, ServerOptions{})
	a, b := localStore(t), localStore(t)
	c := testClient(srv, "")

	if _, err := a.PutChunked("k", "checkpoint", checkpointLike(32, 1), 128); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(a, "k"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Push(a, "k") // warm push: ETag short-circuits
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 0 || st.Bytes != 0 {
		t.Fatalf("warm push moved %d blobs / %d bytes", st.Sent, st.Bytes)
	}

	if _, _, err := c.Pull(b, "k"); err != nil {
		t.Fatal(err)
	}
	_, st2, err := c.Pull(b, "k") // warm pull: If-None-Match answers 304
	if err != nil {
		t.Fatal(err)
	}
	if st2.Received != 0 || st2.Bytes != 0 {
		t.Fatalf("warm pull moved %d blobs / %d bytes", st2.Received, st2.Bytes)
	}
	if dups := tl.duplicates(); len(dups) > 0 {
		t.Fatalf("duplicate transfers: %v", dups)
	}
}

// TestPushResumesAfterCrash kills the pushing client between completed
// blob transfers — the moral equivalent of SIGKILL — and proves the
// resumed push re-sends zero completed chunks and the committed artifact
// is intact.
func TestPushResumesAfterCrash(t *testing.T) {
	serverStore, tl, srv := testRegistry(t, ServerOptions{})
	a := localStore(t)
	e, err := a.PutChunked("ckpt", "checkpoint", checkpointLike(48, 2), 128)
	if err != nil {
		t.Fatal(err)
	}

	crashed := 0
	for crashAt := 1; ; crashAt += 7 {
		// A fresh client per attempt: a SIGKILLed process restarts with no
		// in-memory state, only what the server staged durably.
		c := testClient(srv, "")
		c.CrashAfter = crashAt
		_, err := c.Push(a, "ckpt")
		if err == nil {
			break
		}
		if !errors.Is(err, ErrCrashed) {
			t.Fatal(err)
		}
		crashed++
		if crashed > 100 {
			t.Fatal("push never completed")
		}
	}
	if crashed == 0 {
		t.Fatal("test never exercised a crash; lower the crash stride")
	}
	if dups := tl.duplicates(); len(dups) > 0 {
		t.Fatalf("resumed pushes re-sent completed blobs: %v", dups)
	}
	got, ok := serverStore.Stat(tenantPrefix(DefaultTenant) + "ckpt")
	if !ok || got.Object != e.Object {
		t.Fatalf("committed artifact wrong: ok=%v", ok)
	}
	rep, err := serverStore.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("server store after crashy upload: err=%v problems=%v", err, rep.Problems)
	}
}

// TestPullResumesAfterCrash is the download mirror: a client killed
// between completed pieces resumes from its durable stage, re-fetching no
// completed chunk, and the assembled artifact verifies.
func TestPullResumesAfterCrash(t *testing.T) {
	_, tl, srv := testRegistry(t, ServerOptions{})
	a, b := localStore(t), localStore(t)
	e, err := a.PutChunked("ckpt", "checkpoint", checkpointLike(48, 3), 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := testClient(srv, "").Push(a, "ckpt"); err != nil {
		t.Fatal(err)
	}

	crashed := 0
	for crashAt := 1; ; crashAt += 7 {
		c := testClient(srv, "")
		c.CrashAfter = crashAt
		_, _, err := c.Pull(b, "ckpt")
		if err == nil {
			break
		}
		if !errors.Is(err, ErrCrashed) {
			t.Fatal(err)
		}
		crashed++
		if crashed > 100 {
			t.Fatal("pull never completed")
		}
	}
	if crashed == 0 {
		t.Fatal("test never exercised a crash; lower the crash stride")
	}
	if dups := tl.duplicates(); len(dups) > 0 {
		t.Fatalf("resumed pulls re-fetched completed chunks: %v", dups)
	}
	got, ok := b.Stat("ckpt")
	if !ok || got.Object != e.Object {
		t.Fatalf("pulled artifact wrong: ok=%v", ok)
	}
	rep, err := b.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("local store after crashy pull: err=%v problems=%v", err, rep.Problems)
	}
}

// TestSlashKeysRoundTrip: checkpoint keys like ckpt/<job>/<icount> travel
// percent-encoded and stay one path segment.
func TestSlashKeysRoundTrip(t *testing.T) {
	_, _, srv := testRegistry(t, ServerOptions{})
	a, b := localStore(t), localStore(t)
	c := testClient(srv, "")
	key := "ckpt/region-3-replay/200000"
	if _, err := a.PutChunked(key, "checkpoint", checkpointLike(16, 9), 128); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(a, key); err != nil {
		t.Fatalf("push slash key: %v", err)
	}
	if _, _, err := c.Pull(b, key); err != nil {
		t.Fatalf("pull slash key: %v", err)
	}
	ea, _ := a.Stat(key)
	eb, ok := b.Stat(key)
	if !ok || eb.Object != ea.Object {
		t.Fatalf("slash key artifact mismatched: ok=%v", ok)
	}
	// Traversal-shaped keys are refused at the door.
	if _, err := c.Stat("../../etc/passwd", ""); !errors.Is(err, ErrRemote) {
		t.Fatalf("traversal key accepted: %v", err)
	}
}

// TestRangeRead exercises the raw HTTP Range surface a partial fetch uses.
func TestRangeRead(t *testing.T) {
	_, _, srv := testRegistry(t, ServerOptions{})
	a := localStore(t)
	payload := bytes.Repeat([]byte("0123456789"), 100)
	if _, err := a.Put("k", "test", store.FileSet{"data": payload}); err != nil {
		t.Fatal(err)
	}
	if _, err := testClient(srv, "").Push(a, "k"); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest("GET", srv.URL+"/v1/t/default/artifacts/k/files/data", nil)
	req.Header.Set("Range", "bytes=100-199")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status %s, want 206", resp.Status)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[100:200]) {
		t.Fatalf("range read returned wrong bytes (%d)", len(got))
	}
}

// TestTenantIsolationAndQuota: namespaces do not leak into each other, a
// closed tenant set rejects strangers, and the byte quota refuses an
// upload before a single byte moves.
func TestTenantIsolationAndQuota(t *testing.T) {
	_, _, srv := testRegistry(t, ServerOptions{
		Tenants: map[string]Tenant{
			"alpha": {},
			"beta":  {Quota: 1024},
		},
	})
	a := localStore(t)
	if _, err := a.Put("k", "test", store.FileSet{"f": bytes.Repeat([]byte("x"), 2048)}); err != nil {
		t.Fatal(err)
	}

	if _, err := testClient(srv, "alpha").Push(a, "k"); err != nil {
		t.Fatal(err)
	}
	// beta cannot see alpha's artifact.
	if _, err := testClient(srv, "beta").Stat("k", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tenant isolation broken: %v", err)
	}
	// beta's quota refuses the 2 KiB artifact at upload-open time.
	if _, err := testClient(srv, "beta").Push(a, "k"); err == nil || !errors.Is(err, ErrRemote) {
		t.Fatalf("quota not enforced: %v", err)
	}
	// Unknown tenants are rejected outright in closed mode.
	if err := testClient(srv, "stranger").Ping(); err != nil {
		t.Fatal(err) // ping is tenant-less and must still work
	}
	if _, err := testClient(srv, "stranger").Entries(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown tenant accepted: %v", err)
	}
}

// TestTenantGCPolicy: one tenant's age policy expires only its own
// entries, and the sweep reclaims the bytes.
func TestTenantGCPolicy(t *testing.T) {
	serverStore, _, srv := testRegistry(t, ServerOptions{
		Tenants: map[string]Tenant{
			"ephemeral": {MaxAge: time.Nanosecond},
			"archive":   {},
		},
	})
	a := localStore(t)
	if _, err := a.PutChunked("k", "checkpoint", checkpointLike(32, 4), 128); err != nil {
		t.Fatal(err)
	}
	if _, err := testClient(srv, "ephemeral").Push(a, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := testClient(srv, "archive").Push(a, "k"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the nanosecond policy age out

	res, err := testClient(srv, "ephemeral").GC()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpiredEntries != 1 {
		t.Fatalf("expired %d entries, want 1", res.ExpiredEntries)
	}
	if _, ok := serverStore.Stat(tenantPrefix("ephemeral") + "k"); ok {
		t.Fatal("ephemeral entry survived its GC policy")
	}
	if _, ok := serverStore.Stat(tenantPrefix("archive") + "k"); !ok {
		t.Fatal("archive tenant's entry was collateral damage")
	}
	// The archive copy still verifies: shared chunks were not swept.
	rep, err := serverStore.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("post-GC verify: err=%v problems=%v", err, rep.Problems)
	}
}

// TestVerifyEndpoint: the server-side deep verify reports damage a client
// would otherwise discover only after downloading.
func TestVerifyEndpoint(t *testing.T) {
	serverStore, _, srv := testRegistry(t, ServerOptions{})
	a := localStore(t)
	if _, err := a.Put("good", "test", store.FileSet{"f": []byte("fine")}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Put("bad", "test", store.FileSet{"f": bytes.Repeat([]byte("doomed"), 100)}); err != nil {
		t.Fatal(err)
	}
	c := testClient(srv, "")
	for _, k := range []string{"good", "bad"} {
		if _, err := c.Push(a, k); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.Verify(false)
	if err != nil || !rep.OK() {
		t.Fatalf("clean store reported problems: err=%v %+v", err, rep)
	}

	// Flip bits inside the bad entry's object on the server's disk.
	e, _ := serverStore.Stat(tenantPrefix(DefaultTenant) + "bad")
	corruptObjectFile(t, serverStore.Root(), e.Object)

	rep, err = c.Verify(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 1 || rep.Problems[0].Key != "bad" {
		t.Fatalf("verify problems: %+v", rep.Problems)
	}
}

// TestPullThroughCache: local misses fill from the registry once, then hit
// locally; keys absent on both sides are plain misses.
func TestPullThroughCache(t *testing.T) {
	_, tl, srv := testRegistry(t, ServerOptions{})
	a, b := localStore(t), localStore(t)
	c := testClient(srv, "")
	if _, err := a.PutChunked("k", "checkpoint", checkpointLike(32, 5), 128); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(a, "k"); err != nil {
		t.Fatal(err)
	}

	pt := NewPullThrough(b, testClient(srv, ""))
	if _, _, ok, err := pt.Get("nope"); ok || err != nil {
		t.Fatalf("absent key: ok=%v err=%v", ok, err)
	}
	files, _, ok, err := pt.Get("k")
	if err != nil || !ok {
		t.Fatalf("pull-through Get: ok=%v err=%v", ok, err)
	}
	if len(files["mem"]) != 32*128 {
		t.Fatalf("pull-through content wrong: %d bytes", len(files["mem"]))
	}
	if _, _, ok, _ = pt.Get("k"); !ok {
		t.Fatal("second Get missed")
	}
	if pt.Fills() != 1 || pt.Hits() != 1 || pt.Misses() != 1 {
		t.Fatalf("counters: fills=%d hits=%d misses=%d", pt.Fills(), pt.Hits(), pt.Misses())
	}
	if dups := tl.duplicates(); len(dups) > 0 {
		t.Fatalf("pull-through re-fetched: %v", dups)
	}

	// Write-through publishes producer-side Puts.
	wt := NewPullThrough(a, testClient(srv, ""))
	wt.PushOnPut = true
	if _, err := wt.Put("produced", "region", store.FileSet{"f": []byte("fresh")}); err != nil {
		t.Fatal(err)
	}
	if _, err := testClient(srv, "").Stat("produced", ""); err != nil {
		t.Fatalf("PushOnPut did not publish: %v", err)
	}
}

// TestChunkReadsAreTenantScoped: in closed-tenant mode a namespace is a
// confidentiality boundary, not just accounting — one tenant's chunk hashes
// must not read out (or even confirm the existence of) another tenant's
// checkpoint pages, via raw object GETs or upload-needs negotiation.
func TestChunkReadsAreTenantScoped(t *testing.T) {
	serverStore, _, srv := testRegistry(t, ServerOptions{
		Tenants: map[string]Tenant{"alpha": {}, "beta": {}},
	})
	a := localStore(t)
	if _, err := a.PutChunked("k", "checkpoint", checkpointLike(16, 6), 128); err != nil {
		t.Fatal(err)
	}
	if _, err := testClient(srv, "alpha").Push(a, "k"); err != nil {
		t.Fatal(err)
	}
	e, ok := serverStore.Stat(tenantPrefix("alpha") + "k")
	if !ok {
		t.Fatal("alpha's artifact missing server-side")
	}
	refs := serverStore.ChunkRefs(e.Object)
	if len(refs) == 0 {
		t.Fatal("artifact has no chunks; test needs a chunked one")
	}
	get := func(tenant, id string) int {
		resp, err := http.Get(srv.URL + "/v1/t/" + tenant + "/objects/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("alpha", refs[0]); code != http.StatusOK {
		t.Fatalf("owner denied its own chunk: %d", code)
	}
	// beta holds a perfectly valid hash of alpha's page — and gets the
	// same answer as for a chunk that does not exist at all.
	if code := get("beta", refs[0]); code != http.StatusNotFound {
		t.Fatalf("cross-tenant chunk read allowed: %d", code)
	}

	// Needs negotiation must not confirm cross-tenant presence either: a
	// beta push of the identical artifact is asked for every chunk, even
	// though the store already holds them all (they dedup on disk anyway).
	stats, err := testClient(srv, "beta").Push(a, "k")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 0 {
		t.Fatalf("closed-mode negotiation leaked %d cross-tenant chunk presences", stats.Skipped)
	}
	// Once beta's own entry references the chunks, beta may read them.
	if code := get("beta", refs[0]); code != http.StatusOK {
		t.Fatalf("referencing tenant denied its chunk: %d", code)
	}
}

// TestGCSweepsAbandonedUploads: an upload session opened and never
// committed is reclaimed by tenant GC once idle past the grace window —
// staged blobs must not accumulate forever.
func TestGCSweepsAbandonedUploads(t *testing.T) {
	serverStore, _, srv := testRegistry(t, ServerOptions{})
	c := testClient(srv, "")
	top := store.FileSet{"f": []byte("abandoned")}
	man := UploadManifest{
		Key: "aband", Kind: "test", Object: store.ObjectID(top),
		Top: map[string]MemberPlan{
			"f": {Size: int64(len(top["f"])), Blobs: []BlobRef{{ID: blobID(top["f"]), Size: int64(len(top["f"]))}}},
		},
	}
	manBytes, err := json.Marshal(&man)
	if err != nil {
		t.Fatal(err)
	}
	_, data, err := c.do("POST", c.turl("uploads"), nil, manBytes)
	if err != nil {
		t.Fatal(err)
	}
	var st UploadStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.do("PUT", c.turl("uploads", st.ID, "blobs", man.Top["f"].Blobs[0].ID),
		nil, top["f"]); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(serverStore.Root(), "uploads", DefaultTenant, st.ID)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("session dir not staged: %v", err)
	}

	// Fresh sessions survive GC (someone may still resume them)…
	res, err := c.GC()
	if err != nil {
		t.Fatal(err)
	}
	if res.StaleUploads != 0 {
		t.Fatalf("GC swept a fresh upload session: %+v", res)
	}
	// …but a session idle past the grace is debris.
	old := time.Now().Add(-2 * uploadGrace)
	if err := os.Chtimes(dir, old, old); err != nil {
		t.Fatal(err)
	}
	res, err = c.GC()
	if err != nil {
		t.Fatal(err)
	}
	if res.StaleUploads != 1 {
		t.Fatalf("stale upload not swept: %+v", res)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("stale session dir survived GC")
	}
}

// TestStagedBytesCountAgainstQuota: parking blobs across never-committed
// sessions is charged like committed bytes — the quota cannot be bypassed
// by simply not committing.
func TestStagedBytesCountAgainstQuota(t *testing.T) {
	_, _, srv := testRegistry(t, ServerOptions{
		Tenants: map[string]Tenant{"q": {Quota: 1024}},
	})
	c := testClient(srv, "q")
	open := func(key string, payload []byte) UploadStatus {
		t.Helper()
		top := store.FileSet{"f": payload}
		man := UploadManifest{
			Key: key, Kind: "test", Object: store.ObjectID(top),
			Top: map[string]MemberPlan{
				"f": {Size: int64(len(payload)), Blobs: []BlobRef{{ID: blobID(payload), Size: int64(len(payload))}}},
			},
		}
		manBytes, err := json.Marshal(&man)
		if err != nil {
			t.Fatal(err)
		}
		_, data, err := c.do("POST", c.turl("uploads"), nil, manBytes)
		if err != nil {
			t.Fatal(err)
		}
		var st UploadStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	one := bytes.Repeat([]byte("a"), 600)
	two := bytes.Repeat([]byte("b"), 600)
	st1 := open("k1", one)
	if _, _, err := c.do("PUT", c.turl("uploads", st1.ID, "blobs", blobID(one)), nil, one); err != nil {
		t.Fatalf("first staged blob within quota rejected: %v", err)
	}
	// Each session alone fits the 1 KiB quota, so admission lets both
	// open; the second blob PUT would park 1200 staged bytes and must be
	// refused.
	st2 := open("k2", two)
	if _, _, err := c.do("PUT", c.turl("uploads", st2.ID, "blobs", blobID(two)), nil, two); !errors.Is(err, ErrRemote) {
		t.Fatalf("staged bytes bypassed the quota: %v", err)
	}
}

// TestPullRejectsHostileManifest: the download manifest is server-supplied,
// and its member names and chunk IDs become client-side file paths — a
// malicious registry must not write outside the pull stage.
func TestPullRejectsHostileManifest(t *testing.T) {
	serveInfo := func(info ArtifactInfo) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/t/{tenant}/artifacts/{key}", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, info)
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}
	entry := store.Entry{Key: "evil", Kind: "test", Object: strings.Repeat("ab", 32)}

	srv := serveInfo(ArtifactInfo{Entry: entry, Top: map[string]int64{"../escape": 4}})
	b := localStore(t)
	c := &Client{Base: srv.URL, Retries: 1}
	if _, _, err := c.Pull(b, "evil"); err == nil || !errors.Is(err, store.ErrCorrupt) ||
		!strings.Contains(err.Error(), "unsafe member name") {
		t.Fatalf("traversal member name accepted: %v", err)
	}

	srv2 := serveInfo(ArtifactInfo{Entry: entry, Top: map[string]int64{},
		Chunks: []BlobRef{{ID: "../../../../etc/passwd", Size: 4}}})
	c2 := &Client{Base: srv2.URL, Retries: 1}
	if _, _, err := c2.Pull(b, "evil"); err == nil || !errors.Is(err, store.ErrCorrupt) ||
		!strings.Contains(err.Error(), "invalid chunk id") {
		t.Fatalf("traversal chunk id accepted: %v", err)
	}
	// Nothing was staged for either attempt: validation runs before any
	// filesystem path is built.
	if _, err := os.Stat(filepath.Join(b.Root(), "xfer")); !os.IsNotExist(err) {
		t.Fatal("hostile manifest reached the pull stage")
	}
}

// TestServerRejectsCorruptUpload: a blob that does not hash to its
// declared ID is refused at the door, and a manifest whose assembly does
// not hash to its declared object never lands in the store.
func TestServerRejectsCorruptUpload(t *testing.T) {
	serverStore, _, srv := testRegistry(t, ServerOptions{})
	man := UploadManifest{
		Key: "evil", Kind: "test",
		Object: strings.Repeat("ab", 32),
		Top: map[string]MemberPlan{
			"f": {Size: 4, Blobs: []BlobRef{{ID: blobID([]byte("good")), Size: 4}}},
		},
	}
	c := testClient(srv, "")
	manBytes, err := json.Marshal(&man)
	if err != nil {
		t.Fatal(err)
	}
	_, data, err := c.do("POST", c.turl("uploads"), nil, manBytes)
	if err != nil {
		t.Fatal(err)
	}
	var st UploadStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}

	// Wrong bytes for the declared blob: rejected.
	if _, _, err := c.do("PUT", c.turl("uploads", st.ID, "blobs", man.Top["f"].Blobs[0].ID),
		nil, []byte("evil")); !errors.Is(err, ErrRemote) {
		t.Fatalf("corrupt blob accepted: %v", err)
	}
	// Right bytes, but the assembled object cannot hash to the fake
	// object ID: commit refused, store untouched.
	if _, _, err := c.do("PUT", c.turl("uploads", st.ID, "blobs", man.Top["f"].Blobs[0].ID),
		nil, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.do("POST", c.turl("uploads", st.ID, "commit"), nil, nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("corrupt commit accepted: %v", err)
	}
	if len(serverStore.Entries()) != 0 {
		t.Fatal("corrupt upload reached the store")
	}
}
