package registry

import (
	"errors"
	"sync/atomic"

	"elfie/internal/store"
)

// PullThrough is a store.Cache whose misses fall through to a remote
// registry: Get serves from the local store when it can, otherwise pulls
// the artifact down (in its stored representation, so content addresses
// match the origin) and serves the local copy. This is how a farm on one
// machine feeds validation runs on another — `pinpoints -store … -remote
// http://…` and the artifacts just appear.
//
// Writes land locally; with PushOnPut they are also pushed upstream, so
// the producing side of the pipeline can populate the registry as it goes.
type PullThrough struct {
	Local  *store.Store
	Remote *Client
	// PushOnPut mirrors every Put/PutChunked to the registry. A push
	// failure fails the Put: a producer configured to publish must not
	// silently produce private artifacts.
	PushOnPut bool

	// Counters for observability and tests.
	hits, misses, fills atomic.Int64
}

var _ store.Cache = (*PullThrough)(nil)

// NewPullThrough wires a local store to a remote registry.
func NewPullThrough(local *store.Store, remote *Client) *PullThrough {
	return &PullThrough{Local: local, Remote: remote}
}

// Root returns the local store's root (journals and staging live with the
// local side).
func (p *PullThrough) Root() string { return p.Local.Root() }

// Hits/Misses/Fills report Get outcomes: served locally, absent everywhere,
// and filled from the remote, respectively.
func (p *PullThrough) Hits() int64   { return p.hits.Load() }
func (p *PullThrough) Misses() int64 { return p.misses.Load() }
func (p *PullThrough) Fills() int64  { return p.fills.Load() }

// Get serves key from the local store, falling through to the registry on
// a miss. A key absent on both sides is a plain miss; a registry that
// cannot be reached surfaces its error (callers treat cache errors as
// misses and rebuild, so a dead registry degrades to local-only work).
func (p *PullThrough) Get(key string) (store.FileSet, *store.Entry, bool, error) {
	files, e, ok, err := p.Local.Get(key)
	if err != nil || ok {
		if ok {
			p.hits.Add(1)
		}
		return files, e, ok, err
	}
	if _, _, err := p.Remote.Pull(p.Local, key); err != nil {
		if errors.Is(err, ErrNotFound) {
			p.misses.Add(1)
			return nil, nil, false, nil
		}
		return nil, nil, false, err
	}
	p.fills.Add(1)
	return p.Local.Get(key)
}

// Put stores locally and, with PushOnPut, publishes upstream.
func (p *PullThrough) Put(key, kind string, files store.FileSet) (*store.Entry, error) {
	e, err := p.Local.Put(key, kind, files)
	if err != nil {
		return nil, err
	}
	return e, p.maybePush(key)
}

// PutChunked stores locally and, with PushOnPut, publishes upstream.
func (p *PullThrough) PutChunked(key, kind string, files store.FileSet, chunkSize int) (*store.Entry, error) {
	e, err := p.Local.PutChunked(key, kind, files, chunkSize)
	if err != nil {
		return nil, err
	}
	return e, p.maybePush(key)
}

func (p *PullThrough) maybePush(key string) error {
	if !p.PushOnPut {
		return nil
	}
	_, err := p.Remote.Push(p.Local, key)
	return err
}
