package elfobj

import (
	"fmt"
)

// Read parses an ELF64 file produced by Write (or any little-endian ELF64
// file using PVM conventions) back into a File.
func Read(buf []byte) (*File, error) {
	if len(buf) < EhdrSize {
		return nil, fmt.Errorf("elfobj: file too short: %d bytes", len(buf))
	}
	if buf[0] != 0x7f || buf[1] != 'E' || buf[2] != 'L' || buf[3] != 'F' {
		return nil, fmt.Errorf("elfobj: bad magic %x", buf[:4])
	}
	if buf[4] != ELFClass64 || buf[5] != ELFData2LSB {
		return nil, fmt.Errorf("elfobj: unsupported class/encoding %d/%d", buf[4], buf[5])
	}
	f := &File{
		Type:    le.Uint16(buf[16:]),
		Machine: le.Uint16(buf[18:]),
		Entry:   le.Uint64(buf[24:]),
		Relocs:  make(map[string][]Reloc),
	}
	phoff := le.Uint64(buf[32:])
	shoff := le.Uint64(buf[40:])
	phnum := int(le.Uint16(buf[56:]))
	shnum := int(le.Uint16(buf[60:]))
	shstrndx := int(le.Uint16(buf[62:]))

	// Raw section headers.
	type shdr struct {
		nameOff            uint32
		typ                uint32
		flags              uint64
		addr, off, size    uint64
		link, info         uint32
		addralign, entsize uint64
	}
	if shoff+uint64(shnum)*ShdrSize > uint64(len(buf)) {
		return nil, fmt.Errorf("elfobj: section header table out of bounds")
	}
	hdrs := make([]shdr, shnum)
	for i := 0; i < shnum; i++ {
		h := buf[shoff+uint64(i)*ShdrSize:]
		hdrs[i] = shdr{
			nameOff: le.Uint32(h[0:]), typ: le.Uint32(h[4:]), flags: le.Uint64(h[8:]),
			addr: le.Uint64(h[16:]), off: le.Uint64(h[24:]), size: le.Uint64(h[32:]),
			link: le.Uint32(h[40:]), info: le.Uint32(h[44:]),
			addralign: le.Uint64(h[48:]), entsize: le.Uint64(h[56:]),
		}
	}
	secData := func(i int) ([]byte, error) {
		h := hdrs[i]
		if h.typ == SHTNobits || h.size == 0 {
			return nil, nil
		}
		if h.off+h.size > uint64(len(buf)) {
			return nil, fmt.Errorf("elfobj: section %d data out of bounds", i)
		}
		return buf[h.off : h.off+h.size], nil
	}
	getStr := func(table []byte, off uint32) string {
		if int(off) >= len(table) {
			return ""
		}
		end := int(off)
		for end < len(table) && table[end] != 0 {
			end++
		}
		return string(table[int(off):end])
	}

	var shstr []byte
	if shstrndx > 0 && shstrndx < shnum {
		d, err := secData(shstrndx)
		if err != nil {
			return nil, err
		}
		shstr = d
	}
	names := make([]string, shnum)
	for i := 1; i < shnum; i++ {
		names[i] = getStr(shstr, hdrs[i].nameOff)
	}

	// First pass: materialize user-visible sections (everything except the
	// generated symtab/strtab/rela sections, which are re-parsed below).
	generated := func(i int) bool {
		switch hdrs[i].typ {
		case SHTSymtab, SHTStrtab, SHTRela:
			return true
		}
		return false
	}
	for i := 1; i < shnum; i++ {
		if generated(i) {
			continue
		}
		d, err := secData(i)
		if err != nil {
			return nil, err
		}
		s := &Section{
			Name: names[i], Type: hdrs[i].typ, Flags: hdrs[i].flags,
			Addr: hdrs[i].addr, Addralign: hdrs[i].addralign,
			Entsize: hdrs[i].entsize, Link: hdrs[i].link, Info: hdrs[i].info,
		}
		if hdrs[i].typ == SHTNobits {
			s.Size = hdrs[i].size
		} else if d != nil {
			s.Data = make([]byte, len(d))
			copy(s.Data, d)
		}
		f.Sections = append(f.Sections, s)
	}

	// Symbol table.
	symNameAt := make(map[uint32]string) // symtab index -> name
	for i := 1; i < shnum; i++ {
		if hdrs[i].typ != SHTSymtab {
			continue
		}
		d, err := secData(i)
		if err != nil {
			return nil, err
		}
		var strs []byte
		if int(hdrs[i].link) < shnum {
			strs, err = secData(int(hdrs[i].link))
			if err != nil {
				return nil, err
			}
		}
		n := len(d) / SymSize
		for j := 1; j < n; j++ {
			e := d[j*SymSize:]
			name := getStr(strs, le.Uint32(e[0:]))
			shndx := le.Uint16(e[6:])
			sec := ""
			switch {
			case shndx == SHNAbs:
				sec = "*ABS*"
			case shndx != SHNUndef && int(shndx) < shnum:
				sec = names[shndx]
			}
			symNameAt[uint32(j)] = name
			f.Symbols = append(f.Symbols, Symbol{
				Name: name, Value: le.Uint64(e[8:]), Size: le.Uint64(e[16:]),
				Binding: e[4] >> 4, Type: e[4] & 0xf, Section: sec,
			})
		}
	}

	// Relocation sections.
	for i := 1; i < shnum; i++ {
		if hdrs[i].typ != SHTRela {
			continue
		}
		d, err := secData(i)
		if err != nil {
			return nil, err
		}
		target := ""
		if int(hdrs[i].info) < shnum {
			target = names[hdrs[i].info]
		}
		n := len(d) / RelaSize
		for j := 0; j < n; j++ {
			e := d[j*RelaSize:]
			info := le.Uint64(e[8:])
			f.Relocs[target] = append(f.Relocs[target], Reloc{
				Offset: le.Uint64(e[0:]),
				Type:   uint32(info),
				Symbol: symNameAt[uint32(info>>32)],
				Addend: int64(le.Uint64(e[16:])),
			})
		}
	}

	// Program headers.
	for i := 0; i < phnum; i++ {
		p := buf[phoff+uint64(i)*PhdrSize:]
		seg := &Segment{
			Type:   le.Uint32(p[0:]),
			Flags:  le.Uint32(p[4:]),
			Offset: le.Uint64(p[8:]),
			Vaddr:  le.Uint64(p[16:]),
			Filesz: le.Uint64(p[32:]),
			Memsz:  le.Uint64(p[40:]),
			Align:  le.Uint64(p[48:]),
		}
		if seg.Offset+seg.Filesz > uint64(len(buf)) {
			return nil, fmt.Errorf("elfobj: segment %d data out of bounds", i)
		}
		if seg.Filesz > 0 {
			seg.Data = make([]byte, seg.Filesz)
			copy(seg.Data, buf[seg.Offset:seg.Offset+seg.Filesz])
		}
		f.Segments = append(f.Segments, seg)
	}
	return f, nil
}
