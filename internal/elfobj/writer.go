package elfobj

import (
	"encoding/binary"
	"fmt"
	"sort"
)

var le = binary.LittleEndian

// stringTable builds an ELF string table: a NUL byte followed by
// NUL-terminated strings. It returns the table and the offset of each name.
type stringTable struct {
	data []byte
	off  map[string]uint32
}

func newStringTable() *stringTable {
	return &stringTable{data: []byte{0}, off: map[string]uint32{"": 0}}
}

func (st *stringTable) add(s string) uint32 {
	if o, ok := st.off[s]; ok {
		return o
	}
	o := uint32(len(st.data))
	st.data = append(st.data, s...)
	st.data = append(st.data, 0)
	st.off[s] = o
	return o
}

func align(x, a uint64) uint64 {
	if a <= 1 {
		return x
	}
	return (x + a - 1) &^ (a - 1)
}

// Write serializes the file into ELF64 binary form.
//
// For executables, PT_LOAD program headers are derived from the allocatable
// sections: one segment per maximal run of address-contiguous sections with
// identical permissions. Non-allocatable sections are present in the file
// (and the section header table) but not in any segment — this is what lets
// pinball2elf mark checkpointed stack pages as non-loadable to avoid the
// stack-collision problem.
func (f *File) Write() ([]byte, error) {
	// Assemble the final section list: user sections plus the generated
	// symbol/string/relocation sections.
	secs := make([]*Section, len(f.Sections))
	copy(secs, f.Sections)

	symstr := newStringTable()
	symtab, symIndex, err := f.buildSymtab(symstr)
	if err != nil {
		return nil, err
	}
	numLocal := 0
	for _, s := range f.symbolsSorted() {
		if s.Binding == STBLocal {
			numLocal++
		}
	}

	var relaSecs []*Section
	if len(f.Relocs) > 0 {
		names := make([]string, 0, len(f.Relocs))
		for name := range f.Relocs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			relocs := f.Relocs[name]
			if len(relocs) == 0 {
				continue
			}
			if f.sectionIndex(name) == SHNUndef {
				return nil, fmt.Errorf("elfobj: relocations for unknown section %q", name)
			}
			data := make([]byte, 0, len(relocs)*RelaSize)
			for _, r := range relocs {
				idx, ok := symIndex[r.Symbol]
				if !ok {
					return nil, fmt.Errorf("elfobj: relocation references unknown symbol %q", r.Symbol)
				}
				var e [RelaSize]byte
				le.PutUint64(e[0:], r.Offset)
				le.PutUint64(e[8:], uint64(idx)<<32|uint64(r.Type))
				le.PutUint64(e[16:], uint64(r.Addend))
				data = append(data, e[:]...)
			}
			relaSecs = append(relaSecs, &Section{
				Name:    ".rela" + name,
				Type:    SHTRela,
				Entsize: RelaSize,
				Data:    data,
				// Link and Info are fixed up below once indexes are known.
			})
		}
	}

	symtabSec := &Section{
		Name: ".symtab", Type: SHTSymtab, Entsize: SymSize,
		Data: symtab, Info: uint32(numLocal + 1), Addralign: 8,
	}
	strtabSec := &Section{Name: ".strtab", Type: SHTStrtab, Data: symstr.data}
	shstr := newStringTable()
	shstrtabSec := &Section{Name: ".shstrtab", Type: SHTStrtab}

	secs = append(secs, relaSecs...)
	secs = append(secs, symtabSec, strtabSec, shstrtabSec)

	// Section indexes within the final header table (0 = null entry).
	idxOf := func(name string) uint32 {
		for i, s := range secs {
			if s.Name == name {
				return uint32(i + 1)
			}
		}
		return 0
	}
	symtabSec.Link = idxOf(".strtab")
	for _, rs := range relaSecs {
		rs.Link = idxOf(".symtab")
		rs.Info = idxOf(rs.Name[len(".rela"):])
	}
	for _, s := range secs {
		shstr.add(s.Name)
	}
	shstrtabSec.Data = shstr.data

	// Derive program headers for executables.
	var segs []*Segment
	if f.Type == ETExec {
		segs = f.DeriveSegments()
	}

	// Lay out the file: header, program headers, section data, headers.
	off := uint64(EhdrSize)
	phoff := uint64(0)
	if len(segs) > 0 {
		phoff = off
		off += uint64(len(segs)) * PhdrSize
	}
	secOff := make([]uint64, len(secs))
	for i, s := range secs {
		if s.Type == SHTNobits {
			secOff[i] = off
			continue
		}
		a := s.Addralign
		if a == 0 {
			a = 1
		}
		off = align(off, a)
		secOff[i] = off
		off += uint64(len(s.Data))
	}
	shoff := align(off, 8)
	total := shoff + uint64(len(secs)+1)*ShdrSize

	buf := make([]byte, total)

	// ELF header.
	copy(buf, []byte{0x7f, 'E', 'L', 'F', ELFClass64, ELFData2LSB, EVCurrent, ELFOSABINone})
	le.PutUint16(buf[16:], f.Type)
	le.PutUint16(buf[18:], f.Machine)
	le.PutUint32(buf[20:], EVCurrent)
	le.PutUint64(buf[24:], f.Entry)
	le.PutUint64(buf[32:], phoff)
	le.PutUint64(buf[40:], shoff)
	le.PutUint32(buf[48:], 0) // flags
	le.PutUint16(buf[52:], EhdrSize)
	le.PutUint16(buf[54:], PhdrSize)
	le.PutUint16(buf[56:], uint16(len(segs)))
	le.PutUint16(buf[58:], ShdrSize)
	le.PutUint16(buf[60:], uint16(len(secs)+1))
	le.PutUint16(buf[62:], uint16(idxOf(".shstrtab")))

	// Program headers. Segment file offsets point at the owning section data.
	segOffset := func(seg *Segment) uint64 {
		for i, s := range secs {
			if s.Flags&SHFAlloc != 0 && s.Type != SHTNobits &&
				s.Addr <= seg.Vaddr && seg.Vaddr < s.Addr+uint64(len(s.Data)) {
				return secOff[i] + (seg.Vaddr - s.Addr)
			}
		}
		return 0
	}
	for i, seg := range segs {
		p := buf[phoff+uint64(i)*PhdrSize:]
		seg.Offset = segOffset(seg)
		le.PutUint32(p[0:], seg.Type)
		le.PutUint32(p[4:], seg.Flags)
		le.PutUint64(p[8:], seg.Offset)
		le.PutUint64(p[16:], seg.Vaddr)
		le.PutUint64(p[24:], seg.Vaddr) // paddr
		le.PutUint64(p[32:], seg.Filesz)
		le.PutUint64(p[40:], seg.Memsz)
		le.PutUint64(p[48:], seg.Align)
	}
	f.Segments = segs

	// Section data.
	for i, s := range secs {
		if s.Type != SHTNobits {
			copy(buf[secOff[i]:], s.Data)
		}
	}

	// Section header table. Entry 0 is the null header.
	for i, s := range secs {
		h := buf[shoff+uint64(i+1)*ShdrSize:]
		le.PutUint32(h[0:], shstr.add(s.Name))
		le.PutUint32(h[4:], s.Type)
		le.PutUint64(h[8:], s.Flags)
		le.PutUint64(h[16:], s.Addr)
		le.PutUint64(h[24:], secOff[i])
		le.PutUint64(h[32:], s.DataSize())
		le.PutUint32(h[40:], s.Link)
		le.PutUint32(h[44:], s.Info)
		le.PutUint64(h[48:], s.Addralign)
		le.PutUint64(h[56:], s.Entsize)
	}
	return buf, nil
}

// symbolsSorted returns the symbol list with locals before globals, as the
// ELF specification requires.
func (f *File) symbolsSorted() []Symbol {
	out := make([]Symbol, 0, len(f.Symbols))
	for _, s := range f.Symbols {
		if s.Binding == STBLocal {
			out = append(out, s)
		}
	}
	for _, s := range f.Symbols {
		if s.Binding != STBLocal {
			out = append(out, s)
		}
	}
	return out
}

// buildSymtab serializes the symbol table, adding undefined entries for
// symbols that relocations reference but the symbol list lacks.
func (f *File) buildSymtab(strtab *stringTable) ([]byte, map[string]uint32, error) {
	syms := f.symbolsSorted()
	have := make(map[string]bool, len(syms))
	for _, s := range syms {
		have[s.Name] = true
	}
	var extra []string
	for _, relocs := range f.Relocs {
		for _, r := range relocs {
			if !have[r.Symbol] {
				have[r.Symbol] = true
				extra = append(extra, r.Symbol)
			}
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		syms = append(syms, Symbol{Name: name, Binding: STBGlobal})
	}

	data := make([]byte, SymSize, (len(syms)+1)*SymSize) // entry 0 is null
	index := make(map[string]uint32, len(syms))
	for i, s := range syms {
		if _, dup := index[s.Name]; dup && s.Name != "" {
			return nil, nil, fmt.Errorf("elfobj: duplicate symbol %q", s.Name)
		}
		index[s.Name] = uint32(i + 1)
		var e [SymSize]byte
		le.PutUint32(e[0:], strtab.add(s.Name))
		e[4] = s.Binding<<4 | s.Type&0xf
		shndx := f.sectionIndex(s.Section)
		if s.Section != "" && s.Section != "*ABS*" && shndx == SHNUndef {
			return nil, nil, fmt.Errorf("elfobj: symbol %q in unknown section %q", s.Name, s.Section)
		}
		le.PutUint16(e[6:], shndx)
		le.PutUint64(e[8:], s.Value)
		le.PutUint64(e[16:], s.Size)
		data = append(data, e[:]...)
	}
	return data, index, nil
}

// DeriveSegments builds one PT_LOAD segment per allocatable section, in
// address order. Sections from a pinball memory image already coalesce
// consecutive pages, so the segment count stays proportional to the number
// of distinct mapped regions, not pages. Write calls this for executables;
// the kernel loader uses it for in-memory files that have not been
// serialized yet. Derived segments reference section data directly.
func (f *File) DeriveSegments() []*Segment {
	var alloc []*Section
	for _, s := range f.Sections {
		if s.Flags&SHFAlloc != 0 && s.DataSize() > 0 {
			alloc = append(alloc, s)
		}
	}
	sort.SliceStable(alloc, func(i, j int) bool { return alloc[i].Addr < alloc[j].Addr })

	segs := make([]*Segment, 0, len(alloc))
	for _, s := range alloc {
		fl := uint32(PFR)
		if s.Flags&SHFWrite != 0 {
			fl |= PFW
		}
		if s.Flags&SHFExecinstr != 0 {
			fl |= PFX
		}
		filesz := uint64(0)
		if s.Type != SHTNobits {
			filesz = uint64(len(s.Data))
		}
		segs = append(segs, &Segment{
			Type: PTLoad, Flags: fl, Vaddr: s.Addr,
			Filesz: filesz, Memsz: s.DataSize(), Align: 0x1000,
			Data: s.Data,
		})
	}
	return segs
}
