package elfobj

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleExec() *File {
	f := NewExec(0x401000)
	f.AddSection(&Section{
		Name: ".text", Type: SHTProgbits, Flags: SHFAlloc | SHFExecinstr,
		Addr: 0x401000, Addralign: 16, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8},
	})
	f.AddSection(&Section{
		Name: ".data", Type: SHTProgbits, Flags: SHFAlloc | SHFWrite,
		Addr: 0x601000, Addralign: 8, Data: []byte("hello world\x00"),
	})
	f.AddSection(&Section{
		Name: ".bss", Type: SHTNobits, Flags: SHFAlloc | SHFWrite,
		Addr: 0x602000, Size: 4096,
	})
	f.AddSection(&Section{
		Name: ".stack.p0", Type: SHTProgbits, Flags: 0, // non-alloc: not loaded
		Addr: 0x7ffff0000000, Data: bytes.Repeat([]byte{0xaa}, 64),
	})
	f.Symbols = append(f.Symbols,
		Symbol{Name: "_start", Value: 0x401000, Binding: STBGlobal, Type: STTFunc, Section: ".text"},
		Symbol{Name: ".t0.rax", Value: 0x601000, Binding: STBLocal, Type: STTObject, Section: ".data"},
		Symbol{Name: "absolute", Value: 0x1234, Binding: STBGlobal, Section: "*ABS*"},
	)
	return f
}

func TestWriteReadExec(t *testing.T) {
	f := sampleExec()
	buf, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != ETExec || g.Machine != EMPVM || g.Entry != 0x401000 {
		t.Errorf("header mismatch: %+v", g)
	}
	for _, name := range []string{".text", ".data", ".bss", ".stack.p0"} {
		ws, rs := f.Section(name), g.Section(name)
		if rs == nil {
			t.Fatalf("section %s lost", name)
		}
		if rs.Addr != ws.Addr || rs.Flags != ws.Flags || rs.Type != ws.Type {
			t.Errorf("section %s header mismatch: %+v vs %+v", name, rs, ws)
		}
		if !bytes.Equal(rs.Data, ws.Data) {
			t.Errorf("section %s data mismatch", name)
		}
		if rs.DataSize() != ws.DataSize() {
			t.Errorf("section %s size %d != %d", name, rs.DataSize(), ws.DataSize())
		}
	}
	if len(g.Symbols) != 3 {
		t.Fatalf("got %d symbols: %+v", len(g.Symbols), g.Symbols)
	}
	st, ok := g.Symbol("_start")
	if !ok || st.Value != 0x401000 || st.Section != ".text" || st.Type != STTFunc {
		t.Errorf("_start: %+v ok=%v", st, ok)
	}
	ab, ok := g.Symbol("absolute")
	if !ok || ab.Section != "*ABS*" || ab.Value != 0x1234 {
		t.Errorf("absolute: %+v ok=%v", ab, ok)
	}
}

func TestSegmentsDerived(t *testing.T) {
	f := sampleExec()
	buf, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	// .text, .data, .bss are loadable; .stack.p0 is not.
	if len(g.Segments) != 3 {
		t.Fatalf("got %d segments: %+v", len(g.Segments), g.Segments)
	}
	txt := g.Segments[0]
	if txt.Vaddr != 0x401000 || txt.Flags != PFR|PFX || !bytes.Equal(txt.Data, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("text segment: %+v", txt)
	}
	bss := g.Segments[2]
	if bss.Vaddr != 0x602000 || bss.Filesz != 0 || bss.Memsz != 4096 || bss.Flags != PFR|PFW {
		t.Errorf("bss segment: %+v", bss)
	}
	for _, seg := range g.Segments {
		if seg.Vaddr == 0x7ffff0000000 {
			t.Error("non-alloc stack section leaked into a segment")
		}
	}
}

func TestObjectRelocations(t *testing.T) {
	f := NewObject()
	f.AddSection(&Section{Name: ".text", Type: SHTProgbits,
		Flags: SHFAlloc | SHFExecinstr, Data: make([]byte, 32)})
	f.AddSection(&Section{Name: ".data", Type: SHTProgbits,
		Flags: SHFAlloc | SHFWrite, Data: make([]byte, 16)})
	f.Symbols = append(f.Symbols,
		Symbol{Name: "foo", Value: 8, Binding: STBGlobal, Type: STTFunc, Section: ".text"})
	f.Relocs[".text"] = []Reloc{
		{Offset: 0, Type: RPVMLimm64, Symbol: "bar", Addend: 4},
		{Offset: 16, Type: RPVMPC32, Symbol: "foo", Addend: 0},
	}
	f.Relocs[".data"] = []Reloc{{Offset: 0, Type: RPVM64, Symbol: "foo"}}

	buf, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != ETRel {
		t.Errorf("type = %d", g.Type)
	}
	rt := g.Relocs[".text"]
	if len(rt) != 2 || rt[0].Symbol != "bar" || rt[0].Type != RPVMLimm64 || rt[0].Addend != 4 {
		t.Errorf("text relocs: %+v", rt)
	}
	if rt[1].Symbol != "foo" || rt[1].Type != RPVMPC32 || rt[1].Offset != 16 {
		t.Errorf("text reloc 1: %+v", rt[1])
	}
	rd := g.Relocs[".data"]
	if len(rd) != 1 || rd[0].Type != RPVM64 || rd[0].Symbol != "foo" {
		t.Errorf("data relocs: %+v", rd)
	}
	// "bar" was auto-added as an undefined symbol.
	bar, ok := g.Symbol("bar")
	if !ok || bar.Section != "" {
		t.Errorf("bar: %+v ok=%v", bar, ok)
	}
}

func TestWriteErrors(t *testing.T) {
	f := NewObject()
	f.Relocs[".nosuch"] = []Reloc{{Symbol: "x"}}
	if _, err := f.Write(); err == nil {
		t.Error("relocations against missing section accepted")
	}

	f2 := NewObject()
	f2.AddSection(&Section{Name: ".text", Type: SHTProgbits})
	f2.Symbols = []Symbol{{Name: "a", Section: ".gone", Binding: STBGlobal}}
	if _, err := f2.Write(); err == nil {
		t.Error("symbol in missing section accepted")
	}

	f3 := NewObject()
	f3.Symbols = []Symbol{
		{Name: "dup", Binding: STBGlobal},
		{Name: "dup", Binding: STBGlobal},
	}
	if _, err := f3.Write(); err == nil {
		t.Error("duplicate symbol accepted")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(nil); err == nil {
		t.Error("Read(nil) succeeded")
	}
	if _, err := Read(make([]byte, 100)); err == nil {
		t.Error("Read(zeros) succeeded")
	}
	f := sampleExec()
	buf, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf...)
	bad[4] = 1 // ELFCLASS32
	if _, err := Read(bad); err == nil {
		t.Error("32-bit class accepted")
	}
	trunc := buf[:EhdrSize+8]
	if _, err := Read(trunc); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestLocalsBeforeGlobals(t *testing.T) {
	f := NewObject()
	f.AddSection(&Section{Name: ".text", Type: SHTProgbits, Data: make([]byte, 8)})
	f.Symbols = []Symbol{
		{Name: "g1", Binding: STBGlobal, Section: ".text"},
		{Name: "l1", Binding: STBLocal, Section: ".text"},
		{Name: "g2", Binding: STBGlobal, Section: ".text"},
		{Name: "l2", Binding: STBLocal, Section: ".text"},
	}
	buf, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	sawGlobal := false
	for _, s := range g.Symbols {
		if s.Binding == STBGlobal {
			sawGlobal = true
		} else if sawGlobal {
			t.Fatalf("local %q after a global: %+v", s.Name, g.Symbols)
		}
	}
}

// Property: writing then reading random section contents round-trips.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := NewExec(0x400000)
		n := 1 + rng.Intn(6)
		addr := uint64(0x400000)
		for i := 0; i < n; i++ {
			data := make([]byte, 1+rng.Intn(512))
			rng.Read(data)
			f.AddSection(&Section{
				Name: ".s" + string(rune('a'+i)), Type: SHTProgbits,
				Flags: SHFAlloc, Addr: addr, Addralign: 1, Data: data,
			})
			addr += uint64(len(data)) + uint64(rng.Intn(8192))&^0xfff + 0x1000
		}
		buf, err := f.Write()
		if err != nil {
			return false
		}
		g, err := Read(buf)
		if err != nil {
			return false
		}
		if len(g.Sections) != n {
			return false
		}
		for i, ws := range f.Sections {
			if !bytes.Equal(g.Sections[i].Data, ws.Data) || g.Sections[i].Addr != ws.Addr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
