package elfobj

import (
	"sort"
	"strings"
)

// LoadSegments returns the file's PT_LOAD program headers sorted by virtual
// address. For an executable that has not been serialized yet (fresh from
// the linker), the program header table is derived from the allocatable
// sections — the same derivation Write performs — so static analysis sees
// the exact segments a loader would.
func (f *File) LoadSegments() []*Segment {
	segs := f.Segments
	if len(segs) == 0 && f.Type == ETExec {
		segs = f.DeriveSegments()
	}
	var out []*Segment
	for _, s := range segs {
		if s.Type == PTLoad {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vaddr < out[j].Vaddr })
	return out
}

// SegmentAt returns the PT_LOAD segment whose memory image covers addr, or
// nil.
func (f *File) SegmentAt(addr uint64) *Segment {
	for _, s := range f.LoadSegments() {
		if addr >= s.Vaddr && addr < s.Vaddr+s.Memsz {
			return s
		}
	}
	return nil
}

// SectionAt returns the allocatable section whose address range covers addr,
// or nil.
func (f *File) SectionAt(addr uint64) *Section {
	for _, s := range f.Sections {
		if s.Flags&SHFAlloc == 0 {
			continue
		}
		if addr >= s.Addr && addr < s.Addr+s.DataSize() {
			return s
		}
	}
	return nil
}

// SymbolsPrefix returns every symbol whose name starts with prefix, sorted
// by name — the accessor the static verifier uses to enumerate the
// generated per-thread restore stubs (__elfie_tN_init, __elfie_tN_target).
func (f *File) SymbolsPrefix(prefix string) []Symbol {
	var out []Symbol
	for _, s := range f.Symbols {
		if strings.HasPrefix(s.Name, prefix) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ReadAddr copies size bytes of section data starting at virtual address
// addr. It returns false when the range is not fully backed by one
// section's initialized data (SHT_NOBITS or out of range).
func (f *File) ReadAddr(addr, size uint64) ([]byte, bool) {
	sec := f.SectionAt(addr)
	if sec == nil || sec.Type == SHTNobits {
		return nil, false
	}
	off := addr - sec.Addr
	if off+size > uint64(len(sec.Data)) {
		return nil, false
	}
	return sec.Data[off : off+size], true
}
