// Package elfobj implements reading and writing of ELF64 object and
// executable files (Tool Interface Standard ELF, version 1.2), the container
// format for programs, relocatable objects, and the ELFies that
// pinball2elf produces.
//
// The package implements the real ELF64 binary layout — ELF header, program
// header table, section header table, string and symbol tables, and RELA
// relocation sections — with a PVM-specific machine number and relocation
// types. Files written here are structurally valid ELF and can be inspected
// with standard tooling conventions (cmd/elfiedump mirrors readelf).
package elfobj

import "fmt"

// ELF identification and header constants (per the ELF64 specification).
const (
	EINident = 16

	ELFClass64   = 2
	ELFData2LSB  = 1 // little-endian
	EVCurrent    = 1
	ELFOSABINone = 0

	// File types.
	ETNone = 0
	ETRel  = 1 // relocatable object
	ETExec = 2 // executable

	// EMPVM is the machine number for PVM-64 ("PV" little-endian).
	EMPVM = 0x5650

	// Section header types.
	SHTNull     = 0
	SHTProgbits = 1
	SHTSymtab   = 2
	SHTStrtab   = 3
	SHTRela     = 4
	SHTNobits   = 8

	// Section flags.
	SHFWrite     = 0x1
	SHFAlloc     = 0x2
	SHFExecinstr = 0x4

	// Program header types and flags.
	PTNull = 0
	PTLoad = 1
	PFX    = 0x1
	PFW    = 0x2
	PFR    = 0x4

	// Symbol bindings and types.
	STBLocal  = 0
	STBGlobal = 1
	STTNotype = 0
	STTObject = 1
	STTFunc   = 2

	// SHNUndef / SHNAbs special section indexes.
	SHNUndef = 0
	SHNAbs   = 0xfff1

	// Structure sizes on disk.
	EhdrSize = 64
	PhdrSize = 56
	ShdrSize = 64
	SymSize  = 24
	RelaSize = 24
)

// PVM relocation types, stored in the type field of RELA entries.
const (
	// RPVM64 patches 8 bytes at the relocation offset with S + A.
	RPVM64 = 1
	// RPVMImm32 patches the 4-byte Imm field of the instruction at the
	// relocation offset with the low 32 bits of S + A (must fit signed 32).
	RPVMImm32 = 2
	// RPVMPC32 patches the Imm field with S + A - (P + L) where P is the
	// instruction address and L its length (branch displacement).
	RPVMPC32 = 3
	// RPVMLimm64 patches the second 8-byte word of a LIMM instruction
	// at the relocation offset with S + A.
	RPVMLimm64 = 4
)

// RelocName returns a printable name for a PVM relocation type.
func RelocName(t uint32) string {
	switch t {
	case RPVM64:
		return "R_PVM_64"
	case RPVMImm32:
		return "R_PVM_IMM32"
	case RPVMPC32:
		return "R_PVM_PC32"
	case RPVMLimm64:
		return "R_PVM_LIMM64"
	}
	return fmt.Sprintf("R_PVM_%d", t)
}

// Section is one ELF section with its header fields and contents.
type Section struct {
	Name      string
	Type      uint32
	Flags     uint64
	Addr      uint64
	Addralign uint64
	Entsize   uint64
	Link      uint32 // interpreted per section type
	Info      uint32
	Data      []byte // nil for SHT_NOBITS
	Size      uint64 // explicit size for SHT_NOBITS; otherwise len(Data)
}

// DataSize returns the section's size in bytes as recorded in its header.
func (s *Section) DataSize() uint64 {
	if s.Type == SHTNobits {
		return s.Size
	}
	return uint64(len(s.Data))
}

// Segment is one program header (loadable segment) of an executable.
type Segment struct {
	Type   uint32
	Flags  uint32
	Vaddr  uint64
	Offset uint64 // assigned by the writer
	Filesz uint64
	Memsz  uint64
	Align  uint64
	Data   []byte
}

// Symbol is one symbol table entry.
type Symbol struct {
	Name    string
	Value   uint64
	Size    uint64
	Binding uint8
	Type    uint8
	Section string // "" = undefined, "*ABS*" = absolute
}

// Reloc is one RELA relocation entry, held by the section it applies to.
type Reloc struct {
	Offset uint64 // within the target section
	Type   uint32
	Symbol string
	Addend int64
}

// File is an in-memory representation of an ELF object or executable.
type File struct {
	Type     uint16 // ETRel or ETExec
	Machine  uint16
	Entry    uint64
	Sections []*Section
	Segments []*Segment
	Symbols  []Symbol
	// Relocs maps a progbits section name to its relocations (objects only).
	Relocs map[string][]Reloc
}

// NewObject returns an empty relocatable object file.
func NewObject() *File {
	return &File{Type: ETRel, Machine: EMPVM, Relocs: make(map[string][]Reloc)}
}

// NewExec returns an empty executable file with the given entry point.
func NewExec(entry uint64) *File {
	return &File{Type: ETExec, Machine: EMPVM, Entry: entry, Relocs: make(map[string][]Reloc)}
}

// Section returns the section with the given name, or nil.
func (f *File) Section(name string) *Section {
	for _, s := range f.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// AddSection appends a section and returns it.
func (f *File) AddSection(s *Section) *Section {
	f.Sections = append(f.Sections, s)
	return s
}

// Symbol returns the symbol with the given name and true, or false.
func (f *File) Symbol(name string) (Symbol, bool) {
	for _, s := range f.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// sectionIndex returns the header-table index of the named section, where
// index 0 is the null section. Returns SHNUndef if absent.
func (f *File) sectionIndex(name string) uint16 {
	if name == "*ABS*" {
		return SHNAbs
	}
	for i, s := range f.Sections {
		if s.Name == name {
			return uint16(i + 1)
		}
	}
	return SHNUndef
}
