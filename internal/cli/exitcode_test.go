package cli

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"elfie/internal/fault"
	"elfie/internal/pinball"
	"elfie/internal/store"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err      error
		code     int
		category string
	}{
		{nil, ExitOK, "ok"},
		{pinball.ErrCorrupt, ExitCorruptInput, "corrupt-input"},
		{pinball.ErrTruncated, ExitCorruptInput, "corrupt-input"},
		{pinball.ErrVersionMismatch, ExitCorruptInput, "corrupt-input"},
		{fmt.Errorf("load: %w", pinball.ErrCorrupt), ExitCorruptInput, "corrupt-input"},
		{store.ErrCorrupt, ExitCorruptInput, "corrupt-input"},
		{fmt.Errorf("checkpoint store: %w", store.ErrCorrupt), ExitCorruptInput, "corrupt-input"},
		{fmt.Errorf("%w: replay left the log", ErrDivergence), ExitDivergence, "divergence"},
		{fmt.Errorf("mystery"), ExitInternal, "internal"},
	}
	for _, c := range cases {
		code, category := Classify(c.err)
		if code != c.code || category != c.category {
			t.Errorf("Classify(%v) = (%d, %s), want (%d, %s)",
				c.err, code, category, c.code, c.category)
		}
	}
}

func TestLoadFaultPlan(t *testing.T) {
	if p, err := LoadFaultPlan(""); p != nil || err != nil {
		t.Fatalf("empty path: plan=%v err=%v", p, err)
	}

	dir := t.TempDir()
	good := filepath.Join(dir, "plan.json")
	data := `{"seed": 7, "rules": [{"point": "syscall-error", "errno": 5, "count": 1}]}`
	if err := os.WriteFile(good, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadFaultPlan(good)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Rules) != 1 || p.Rules[0].Point != fault.SyscallError {
		t.Errorf("plan = %+v", p)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFaultPlan(bad)
	if code, cat := Classify(err); code != ExitCorruptInput || cat != "corrupt-input" {
		t.Errorf("malformed plan classified as (%d, %s): %v", code, cat, err)
	}
}
