package cli

import (
	"os"
	"path/filepath"
	"testing"

	"elfie/internal/asm"
	"elfie/internal/harness"
	"elfie/internal/kernel"
)

func TestLoadWriteELF(t *testing.T) {
	exe, err := asm.Program(".global _start\n_start: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "a.elf")
	if err := WriteELF(path, exe); err != nil {
		t.Fatal(err)
	}
	got, err := LoadELF(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != exe.Entry {
		t.Errorf("entry %#x != %#x", got.Entry, exe.Entry)
	}
	if _, err := LoadELF(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestFSFlag(t *testing.T) {
	var f FSFlag
	if err := f.Set("noequals"); err == nil {
		t.Error("bad mapping accepted")
	}
	host := filepath.Join(t.TempDir(), "data")
	os.WriteFile(host, []byte("payload"), 0o644)
	if err := f.Set("/guest.dat=" + host); err != nil {
		t.Fatal(err)
	}
	if f.String() == "" {
		t.Error("empty String()")
	}
	fs := kernel.NewFS()
	if err := f.Populate(fs); err != nil {
		t.Fatal(err)
	}
	data, ok := fs.ReadFile("/guest.dat")
	if !ok || string(data) != "payload" {
		t.Errorf("populate: %q ok=%v", data, ok)
	}
	f.Set("/nope=/does/not/exist")
	if err := f.Populate(kernel.NewFS()); err == nil {
		t.Error("missing host file accepted")
	}
}

func TestNewSessionRuns(t *testing.T) {
	exe, err := asm.Program(`
	.global _start
_start:	movi r0, 231
	movi r1, 5
	syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(harness.ModeNative, exe, kernel.NewFS(), 1, 10, 1000, []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Machine.ExitStatus != 5 {
		t.Errorf("exit = %d", s.Machine.ExitStatus)
	}
	PrintRunSummary(s.Machine) // smoke: must not panic
}
