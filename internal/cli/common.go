package cli

import (
	"flag"
	"fmt"

	"elfie/internal/fault"
	"elfie/internal/kernel"
	"elfie/internal/registry"
	"elfie/internal/store"
)

// Common holds the flag values every tool spells the same way. Tools opt
// into the subset they need via Register, so -seed, -j, -store, -fault,
// -in, -remote and -tenant mean the same thing (same name, same default,
// same help text) across the whole tool-chain.
type Common struct {
	Seed      int64
	Jobs      int
	StoreDir  string
	FaultPath string
	In        FSFlag
	Remote    string
	Tenant    string
}

// FlagSet selects which shared flags Register installs.
type FlagSet uint

// Shared flags.
const (
	FlagSeed FlagSet = 1 << iota
	FlagJobs
	FlagStore
	FlagFault
	FlagIn
	FlagRemote
)

// Register installs the selected shared flags on the default flag set and
// returns the struct their values land in. Call before flag.Parse.
func Register(which FlagSet) *Common {
	c := &Common{}
	if which&FlagSeed != 0 {
		flag.Int64Var(&c.Seed, "seed", 1, "machine seed (stack randomization, clock jitter, scheduler)")
	}
	if which&FlagJobs != 0 {
		flag.IntVar(&c.Jobs, "j", 0, "parallel workers (0 = GOMAXPROCS)")
	}
	if which&FlagStore != 0 {
		flag.StringVar(&c.StoreDir, "store", "", "content-addressed checkpoint store directory")
	}
	if which&FlagFault != 0 {
		flag.StringVar(&c.FaultPath, "fault", "", "JSON fault plan to inject during the run")
	}
	if which&FlagIn != 0 {
		flag.Var(&c.In, "in", "guestpath=hostpath file mapping (repeatable)")
	}
	if which&FlagRemote != 0 {
		flag.StringVar(&c.Remote, "remote", "", "artifact registry base URL (e.g. http://host:9535)")
		flag.StringVar(&c.Tenant, "tenant", "", "registry tenant namespace (default: \"default\")")
	}
	return c
}

// Plan loads the -fault plan; a nil plan (injection off) when unset.
func (c *Common) Plan() (*fault.Plan, error) {
	return LoadFaultPlan(c.FaultPath)
}

// FS builds a guest filesystem populated from the -in mappings.
func (c *Common) FS() (*kernel.FS, error) {
	fs := kernel.NewFS()
	if err := c.In.Populate(fs); err != nil {
		return nil, err
	}
	return fs, nil
}

// OpenStore opens the -store checkpoint store; nil when unset.
func (c *Common) OpenStore() (*store.Store, error) {
	if c.StoreDir == "" {
		return nil, nil
	}
	return store.Open(c.StoreDir)
}

// Client builds a registry client for the -remote/-tenant flags; nil when
// -remote is unset.
func (c *Common) Client() *registry.Client {
	if c.Remote == "" {
		return nil
	}
	return &registry.Client{Base: c.Remote, Tenant: c.Tenant}
}

// OpenCache resolves -store/-remote into an artifact cache: nil when no
// store is configured, the plain local store when only -store is given, and
// a registry pull-through (local misses fetch from -remote) when both are.
// The explicit nil return matters: a typed-nil *store.Store stuffed into
// the interface would defeat callers' `cache == nil` checks.
func (c *Common) OpenCache() (store.Cache, error) {
	s, err := c.OpenStore()
	if err != nil {
		return nil, err
	}
	if s == nil {
		if c.Remote != "" {
			return nil, fmt.Errorf("-remote needs -store: the pull-through cache fills a local store")
		}
		return nil, nil
	}
	if c.Remote == "" {
		return s, nil
	}
	return registry.NewPullThrough(s, c.Client()), nil
}

// FetchArtifact resolves key through the -store/-remote cache: served
// locally when present, pulled through from the registry otherwise. It is
// how runner tools accept `-key` instead of artifact paths.
func (c *Common) FetchArtifact(key string) (store.FileSet, error) {
	cache, err := c.OpenCache()
	if err != nil {
		return nil, err
	}
	if cache == nil {
		return nil, fmt.Errorf("-key needs -store (and optionally -remote) to fetch from")
	}
	files, _, ok, err := cache.Get(key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("no artifact %q in the store%s", key, remoteSuffix(c.Remote))
	}
	return files, nil
}

func remoteSuffix(remote string) string {
	if remote == "" {
		return ""
	}
	return " or at " + remote
}
