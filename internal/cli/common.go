package cli

import (
	"flag"

	"elfie/internal/fault"
	"elfie/internal/kernel"
	"elfie/internal/store"
)

// Common holds the flag values every tool spells the same way. Tools opt
// into the subset they need via Register, so -seed, -j, -store, -fault and
// -in mean the same thing (same name, same default, same help text) across
// the whole tool-chain.
type Common struct {
	Seed      int64
	Jobs      int
	StoreDir  string
	FaultPath string
	In        FSFlag
}

// FlagSet selects which shared flags Register installs.
type FlagSet uint

// Shared flags.
const (
	FlagSeed FlagSet = 1 << iota
	FlagJobs
	FlagStore
	FlagFault
	FlagIn
)

// Register installs the selected shared flags on the default flag set and
// returns the struct their values land in. Call before flag.Parse.
func Register(which FlagSet) *Common {
	c := &Common{}
	if which&FlagSeed != 0 {
		flag.Int64Var(&c.Seed, "seed", 1, "machine seed (stack randomization, clock jitter, scheduler)")
	}
	if which&FlagJobs != 0 {
		flag.IntVar(&c.Jobs, "j", 0, "parallel workers (0 = GOMAXPROCS)")
	}
	if which&FlagStore != 0 {
		flag.StringVar(&c.StoreDir, "store", "", "content-addressed checkpoint store directory")
	}
	if which&FlagFault != 0 {
		flag.StringVar(&c.FaultPath, "fault", "", "JSON fault plan to inject during the run")
	}
	if which&FlagIn != 0 {
		flag.Var(&c.In, "in", "guestpath=hostpath file mapping (repeatable)")
	}
	return c
}

// Plan loads the -fault plan; a nil plan (injection off) when unset.
func (c *Common) Plan() (*fault.Plan, error) {
	return LoadFaultPlan(c.FaultPath)
}

// FS builds a guest filesystem populated from the -in mappings.
func (c *Common) FS() (*kernel.FS, error) {
	fs := kernel.NewFS()
	if err := c.In.Populate(fs); err != nil {
		return nil, err
	}
	return fs, nil
}

// OpenStore opens the -store checkpoint store; nil when unset.
func (c *Common) OpenStore() (*store.Store, error) {
	if c.StoreDir == "" {
		return nil, nil
	}
	return store.Open(c.StoreDir)
}
