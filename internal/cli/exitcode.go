package cli

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"elfie/internal/fault"
	"elfie/internal/pinball"
	"elfie/internal/store"
)

// Process exit codes shared by the command-line tools, so scripts can tell
// bad inputs from genuine divergence from tool bugs.
const (
	// ExitOK: success.
	ExitOK = 0
	// ExitInternal: internal or unclassified error.
	ExitInternal = 1
	// ExitCorruptInput: an input (pinball, fault plan) failed integrity or
	// format checks.
	ExitCorruptInput = 2
	// ExitDivergence: the run diverged from its reference (replay left the
	// log, or an ELFie died ungracefully).
	ExitDivergence = 3
)

// Marker errors tools wrap (%w) to classify their own failures.
var (
	// ErrCorruptInput marks unusable input files.
	ErrCorruptInput = errors.New("corrupt input")
	// ErrDivergence marks runs that departed from their reference.
	ErrDivergence = errors.New("divergence")
)

// Classify maps an error to its exit code and category label.
func Classify(err error) (code int, category string) {
	switch {
	case err == nil:
		return ExitOK, "ok"
	case errors.Is(err, pinball.ErrCorrupt), errors.Is(err, pinball.ErrTruncated),
		errors.Is(err, pinball.ErrVersionMismatch), errors.Is(err, ErrCorruptInput),
		errors.Is(err, store.ErrCorrupt):
		return ExitCorruptInput, "corrupt-input"
	case errors.Is(err, ErrDivergence):
		return ExitDivergence, "divergence"
	}
	return ExitInternal, "internal"
}

// DieClassified prints the error with its category on stderr and exits with
// the matching code.
func DieClassified(err error) {
	code, category := Classify(err)
	fmt.Fprintf(os.Stderr, "error (%s): %v\n", category, err)
	os.Exit(code)
}

// LoadFaultPlan reads a JSON fault plan from path. An empty path yields a
// nil plan (injection off).
func LoadFaultPlan(path string) (*fault.Plan, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p fault.Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: fault plan %s: %v", ErrCorruptInput, path, err)
	}
	return &p, nil
}
