// Package cli holds helpers shared by the command-line tools: loading PVM
// executables, populating guest filesystems from host paths, and printing
// run summaries.
package cli

import (
	"fmt"
	"os"
	"strings"

	"elfie/internal/elfobj"
	"elfie/internal/fault"
	"elfie/internal/harness"
	"elfie/internal/kernel"
	"elfie/internal/vm"
)

// ParseELF parses an in-memory ELF image (e.g. a store artifact member).
// Malformed images classify as corrupt input.
func ParseELF(name string, buf []byte) (*elfobj.File, error) {
	f, err := elfobj.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptInput, name, err)
	}
	return f, nil
}

// LoadELF reads a PVM ELF file from disk. Malformed files classify as
// corrupt input.
func LoadELF(path string) (*elfobj.File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := elfobj.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptInput, path, err)
	}
	return f, nil
}

// WriteELF writes a PVM ELF file to disk.
func WriteELF(path string, f *elfobj.File) error {
	buf, err := f.Write()
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o755)
}

// FSFlag collects repeated -in guestpath=hostpath mappings.
type FSFlag struct {
	Mappings []string
}

// String implements flag.Value.
func (f *FSFlag) String() string { return strings.Join(f.Mappings, ",") }

// Set implements flag.Value.
func (f *FSFlag) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want guestpath=hostpath, got %q", v)
	}
	f.Mappings = append(f.Mappings, v)
	return nil
}

// Populate copies the mapped host files into a guest filesystem.
func (f *FSFlag) Populate(fs *kernel.FS) error {
	for _, m := range f.Mappings {
		i := strings.Index(m, "=")
		guest, host := m[:i], m[i+1:]
		data, err := os.ReadFile(host)
		if err != nil {
			return fmt.Errorf("-in %s: %v", m, err)
		}
		fs.WriteFile(guest, data)
	}
	return nil
}

// NewSession composes a run session for an executable with the given
// filesystem, scheduler parameters, and optional fault plan. All tools build
// their machines through this one path, so scheduler defaults and fault
// arming are uniform across modes.
func NewSession(mode harness.Mode, exe *elfobj.File, fs *kernel.FS, seed int64, jitter int, budget uint64, argv []string, plan *fault.Plan) (*harness.Session, error) {
	return harness.New(harness.Config{
		Mode: mode, Exe: exe, Argv: argv, FS: fs,
		Seed: seed, Jitter: jitter, Budget: budget, Plan: plan,
	})
}

// PrintRunSummary reports a finished machine run on stderr and forwards the
// guest's stdout/stderr.
func PrintRunSummary(m *vm.Machine) {
	os.Stdout.Write(m.Stdout())
	os.Stderr.Write(m.Stderr())
	fmt.Fprintf(os.Stderr, "[exit=%d retired=%d threads=%d", m.ExitStatus, m.GlobalRetired, len(m.Threads))
	for _, t := range m.Threads {
		fmt.Fprintf(os.Stderr, " t%d=%d", t.TID, t.Retired)
		for _, pc := range t.PerfCounters() {
			fmt.Fprintf(os.Stderr, "(perf=%d,fired=%v)", pc.Count(t), pc.Fired)
		}
	}
	if m.FatalFault != nil {
		fmt.Fprintf(os.Stderr, " FAULT: %v", m.FatalFault)
	}
	fmt.Fprintln(os.Stderr, "]")
}

// Die prints an error and exits.
func Die(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
